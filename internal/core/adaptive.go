package core

import (
	"context"
	"errors"

	"finser/internal/phys"
	"finser/internal/rng"
	"finser/internal/stats"
)

// Adaptive Monte-Carlo: instead of a fixed particle budget, run batches
// until the POF estimate reaches a requested relative precision. Rare-event
// points (high Vdd, high energy, protons) need orders of magnitude more
// particles than saturated points; fixed budgets either waste work or
// under-resolve. The paper side-steps this with a flat 10 M iterations —
// this estimator gets equal precision for a fraction of the strikes.
//
// BinEstimator below is the one convergence implementation: the single-point
// POFAtEnergyAdaptive API and the whole-integration adaptive FIT mode
// (Config.FITRelErr, see adaptivefit.go) both stream their batches through
// it.

// BinEstimator is a streaming per-bin convergence estimator: it folds
// fixed-size Monte-Carlo batch estimates into pooled Welford moments of
// POFtot, exposing the running mean, standard error, and relative error
// that drive every adaptive stopping rule in core. It is a plain value
// type — zero value ready, no heap allocation, and merges in call order, so
// feeding it the same batch sequence always reproduces the same bits.
type BinEstimator struct {
	energyMeV float64
	tot       stats.Welford
	// The secondary channels only need pooled means (no stopping rule reads
	// their variance), so plain strike-weighted sums suffice.
	sumSEU, sumMBU, sumHits float64
	strikes                 int
	batches                 int
}

// AddBatch folds one batch estimate into the stream. The batch's
// (Strikes, Tot, TotStdErr) summary is converted back into Welford moments
// — variance = se²·n, m2 = variance·(n−1) — and merged, so the pooled mean
// and standard error are those of the concatenated per-strike stream.
func (b *BinEstimator) AddBatch(pt POFPoint) {
	n := int64(pt.Strikes)
	variance := pt.TotStdErr * pt.TotStdErr * float64(n)
	b.tot.Merge(stats.WelfordFromMoments(n, pt.Tot, variance*float64(n-1)))
	nf := float64(pt.Strikes)
	b.sumSEU += pt.SEU * nf
	b.sumMBU += pt.MBU * nf
	b.sumHits += pt.HitFrac * nf
	b.strikes += pt.Strikes
	b.batches++
	b.energyMeV = pt.EnergyMeV
}

// Batches returns how many batches have been folded in.
func (b *BinEstimator) Batches() int { return b.batches }

// Strikes returns the total particles consumed so far.
func (b *BinEstimator) Strikes() int { return b.strikes }

// Mean returns the pooled POFtot mean.
func (b *BinEstimator) Mean() float64 { return b.tot.Mean() }

// StdErr returns the pooled standard error of the POFtot mean.
func (b *BinEstimator) StdErr() float64 { return b.tot.StdErr() }

// RelErr returns stderr/mean of POFtot, the convergence figure of merit
// (0 while the mean is zero — callers gate on Mean() > 0 separately).
func (b *BinEstimator) RelErr() float64 {
	if m := b.tot.Mean(); m > 0 {
		return b.tot.StdErr() / m
	}
	return 0
}

// Point renders the pooled estimate as a POFPoint.
func (b *BinEstimator) Point() POFPoint {
	if b.strikes == 0 {
		return POFPoint{EnergyMeV: b.energyMeV}
	}
	nf := float64(b.strikes)
	return POFPoint{
		EnergyMeV: b.energyMeV,
		Tot:       b.tot.Mean(),
		SEU:       b.sumSEU / nf,
		MBU:       b.sumMBU / nf,
		TotStdErr: b.tot.StdErr(),
		Strikes:   b.strikes,
		HitFrac:   b.sumHits / nf,
	}
}

// AdaptiveSpec controls the stopping rule.
type AdaptiveSpec struct {
	// TargetRelErr stops when stderr/mean of POFtot falls below this
	// (default 0.05).
	TargetRelErr float64
	// BatchSize is the number of particles per convergence check
	// (default 20000).
	BatchSize int
	// MaxStrikes bounds the total work (default 5e6). If the target
	// precision is not reached by then, the estimate is returned with
	// Converged=false.
	MaxStrikes int
	// MinStrikes guards against lucky early stops (default 2×BatchSize).
	MinStrikes int
}

func (s AdaptiveSpec) withDefaults() AdaptiveSpec {
	if s.TargetRelErr <= 0 {
		s.TargetRelErr = 0.05
	}
	if s.BatchSize <= 0 {
		s.BatchSize = 20000
	}
	if s.MaxStrikes <= 0 {
		s.MaxStrikes = 5_000_000
	}
	if s.MinStrikes <= 0 {
		s.MinStrikes = 2 * s.BatchSize
	}
	return s
}

// AdaptivePOF is a POFPoint with convergence metadata.
type AdaptivePOF struct {
	POFPoint
	Converged bool
	RelErr    float64
}

// POFAtEnergyAdaptive estimates the POF at one energy to the requested
// relative precision, batching until converged or the strike budget is
// exhausted.
func (e *Engine) POFAtEnergyAdaptive(sp phys.Species, energyMeV float64, spec AdaptiveSpec, seed uint64) (AdaptivePOF, error) {
	return e.POFAtEnergyAdaptiveCtx(context.Background(), sp, energyMeV, spec, seed)
}

// POFAtEnergyAdaptiveCtx is POFAtEnergyAdaptive with cooperative
// cancellation between (and inside) batches; worker panics surface as
// stack-carrying errors instead of crashing the process. Batch seeds are
// drawn sequentially from rng.New(seed), so the estimate for a fixed
// (spec, seed, workers) is bit-identical across runs.
func (e *Engine) POFAtEnergyAdaptiveCtx(ctx context.Context, sp phys.Species, energyMeV float64, spec AdaptiveSpec, seed uint64) (AdaptivePOF, error) {
	spec = spec.withDefaults()
	if energyMeV <= 0 {
		return AdaptivePOF{}, errors.New("core: adaptive POF needs positive energy")
	}
	src := rng.New(seed)
	var est BinEstimator
	for est.Strikes() < spec.MaxStrikes {
		pt, err := e.POFAtEnergyCtx(ctx, sp, energyMeV, spec.BatchSize, src.Uint64())
		if err != nil {
			return AdaptivePOF{}, err
		}
		est.AddBatch(pt)
		if est.Strikes() >= spec.MinStrikes && est.Mean() > 0 && est.RelErr() <= spec.TargetRelErr {
			return AdaptivePOF{POFPoint: est.Point(), Converged: true, RelErr: est.RelErr()}, nil
		}
	}
	return AdaptivePOF{POFPoint: est.Point(), Converged: false, RelErr: est.RelErr()}, nil
}
