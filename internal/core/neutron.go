package core

import (
	"errors"
	"sync"

	"finser/internal/geom"
	"finser/internal/neutron"
	"finser/internal/phys"
	"finser/internal/rng"
	"finser/internal/spectra"
	"finser/internal/stats"
	"finser/internal/transport"
)

// Neutron-induced SER: the paper's future-work extension. Neutrons do not
// ionize directly; each Monte-Carlo trial forces a nuclear interaction
// inside a fin the track crosses and weights the outcome by the (tiny)
// analytic interaction probability, then transports the charged secondaries
// (Si/Mg/Al recoils, alphas, protons) through the array with the same
// device-level machinery used for direct ionization. Interactions are
// restricted to fin silicon: in SOI, charge generated below the buried
// oxide cannot reach the devices (the paper's own argument for neglecting
// substrate diffusion).

// NeutronPoint is the weighted POF of the array for neutrons at one energy:
// the expected POF per neutron crossing the array footprint (interaction
// probability folded in).
type NeutronPoint struct {
	EnergyMeV float64
	Tot       float64
	SEU       float64
	MBU       float64
	TotStdErr float64
	Strikes   int
	// InteractionWeight is the mean per-track interaction probability —
	// a diagnostic for the forced-interaction variance reduction.
	InteractionWeight float64
}

// NeutronPOFAtEnergy estimates the weighted POFs with iters forced-
// interaction trials at one neutron energy.
func (e *Engine) NeutronPOFAtEnergy(rx *neutron.Reactions, energyMeV float64, iters int, seed uint64) NeutronPoint {
	workers := e.cfg.Workers
	if iters < workers {
		workers = 1
	}
	srcs := rng.New(seed).ForkN(workers)

	type acc struct {
		tot, seu, mbu, weight stats.Welford
	}
	results := make(chan acc, workers)
	var wg sync.WaitGroup
	per := iters / workers
	extra := iters % workers
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(src *rng.Source, n int) {
			defer wg.Done()
			scr := e.getScratch()
			defer e.putScratch(scr)
			var a acc
			for i := 0; i < n; i++ {
				o, wgt := e.neutronStrike(rx, src, energyMeV, scr)
				a.tot.Add(wgt * o.pofTot)
				a.seu.Add(wgt * o.pofSEU)
				a.mbu.Add(wgt * o.pofMBU)
				a.weight.Add(wgt)
			}
			results <- a
		}(srcs[w], n)
	}
	wg.Wait()
	close(results)

	var tot, seu, mbu, weight stats.Welford
	for a := range results {
		tot.Merge(a.tot)
		seu.Merge(a.seu)
		mbu.Merge(a.mbu)
		weight.Merge(a.weight)
	}
	return NeutronPoint{
		EnergyMeV:         energyMeV,
		Tot:               tot.Mean(),
		SEU:               seu.Mean(),
		MBU:               mbu.Mean(),
		TotStdErr:         tot.StdErr(),
		Strikes:           iters,
		InteractionWeight: weight.Mean(),
	}
}

// substrateSlab returns the handle-wafer silicon volume under the BOX that
// serves as an additional neutron interaction target.
func (e *Engine) substrateSlab() (geom.AABB, bool) {
	depth := e.cfg.NeutronSubstrateDepthNm
	if depth == 0 {
		depth = 3000
	}
	if depth < 0 {
		return geom.AABB{}, false
	}
	b := e.arr.Bounds()
	top := -e.cfg.Tech.BoxDepthNm
	return geom.Box(
		geom.V(b.Min.X, b.Min.Y, top-depth),
		geom.V(b.Max.X, b.Max.Y, top),
	), true
}

// neutronStrike runs one forced-interaction trial and returns the strike
// outcome plus its probability weight. Interaction targets are the fin
// silicon plus the substrate slab; the interaction point is sampled
// proportionally to silicon path length, which is exact for σ·n·L ≪ 1.
// scr holds the worker's reusable buffers; per-cell charges accumulate in
// its dense epoch-cleared accumulator and are reduced in sorted cell order
// so the weighted POFs are bit-identical across runs.
func (e *Engine) neutronStrike(rx *neutron.Reactions, src *rng.Source, energyMeV float64, scr *strikeScratch) (strikeOutcome, float64) {
	ray := e.sampleRay(src, phys.Proton) // cosine-law, like any atmospheric particle
	// Chords through each candidate fin plus the substrate slab.
	chords := scr.chords[:0]
	totalLen := 0.0
	scr.candidate = appendCandidateFins(e, ray, scr.candidate[:0])
	for _, fi := range scr.candidate {
		tIn, tOut, ok := e.boxes[fi].Intersect(ray)
		if ok && tOut > tIn {
			chords = append(chords, chordSeg{tIn: tIn, len: tOut - tIn})
			totalLen += tOut - tIn
		}
	}
	if slab, ok := e.substrateSlab(); ok {
		if tIn, tOut, hit := slab.Intersect(ray); hit && tOut > tIn {
			chords = append(chords, chordSeg{tIn: tIn, len: tOut - tIn})
			totalLen += tOut - tIn
		}
	}
	scr.chords = chords
	if totalLen <= 0 {
		return strikeOutcome{}, 0
	}
	weight := rx.InteractionProbability(energyMeV, totalLen)
	if weight <= 0 {
		return strikeOutcome{}, 0
	}

	// Force the interaction: pick a silicon segment proportional to chord
	// length and a point uniform along it.
	pick := src.Float64() * totalLen
	var at geom.Vec3
	for _, c := range chords {
		if pick <= c.len {
			at = ray.At(c.tIn + pick)
			break
		}
		pick -= c.len
	}

	secs := rx.SampleInteraction(src, energyMeV)
	if len(secs) == 0 {
		return strikeOutcome{}, 0
	}

	// Transport every charged secondary and merge the per-cell charges.
	scr.beginCells()
	for _, sec := range secs {
		secRay := geom.Ray{Origin: at, Dir: sec.Dir}
		scr.candidate = appendCandidateFins(e, secRay, scr.candidate[:0])
		if len(scr.candidate) == 0 {
			continue
		}
		boxes := e.candidateBoxes(scr, scr.candidate)
		scr.deps = transport.TraceAppend(e.cfg.Transport, sec.Species, sec.EnergyMeV, secRay, boxes, src, &scr.tr, scr.deps[:0])
		e.accumulateCharges(scr, scr.candidate, scr.deps)
	}
	if len(scr.touched) == 0 {
		return strikeOutcome{}, weight
	}
	scr.sortTouched()
	pofs := scr.pofs[:0]
	for _, ci := range scr.touched {
		if p := e.providerFor(ci).POF(scr.cellQ[ci]); p > 0 {
			pofs = append(pofs, p)
		}
	}
	scr.pofs = pofs
	return combinePOFs(pofs, len(scr.touched)), weight
}

// NeutronFIT integrates the weighted POFs over the neutron spectrum into
// FIT rates, exactly as Eq. 8 does for directly ionizing particles.
func (e *Engine) NeutronFIT(spec spectra.Spectrum, rx *neutron.Reactions, bins []spectra.EnergyBin, itersPerBin int, seed uint64) (FITResult, error) {
	if len(bins) == 0 {
		return FITResult{}, errors.New("core: neutron FIT needs at least one energy bin")
	}
	if itersPerBin <= 0 {
		return FITResult{}, errors.New("core: neutron FIT needs positive iterations per bin")
	}
	lx, ly := e.arr.DimsCm()
	area := lx * ly
	res := FITResult{
		Species: phys.SiliconIon, // dominant secondary; neutrons are uncharged
		Vdd:     e.cfg.Char.SupplyVoltage(),
		Bins:    bins,
	}
	src := rng.New(seed)
	for _, b := range bins {
		pt := e.NeutronPOFAtEnergy(rx, b.Rep, itersPerBin, src.Uint64())
		res.Points = append(res.Points, POFPoint{
			EnergyMeV: pt.EnergyMeV,
			Tot:       pt.Tot,
			SEU:       pt.SEU,
			MBU:       pt.MBU,
			TotStdErr: pt.TotStdErr,
			Strikes:   pt.Strikes,
		})
		res.TotalFIT += pt.Tot * b.IntFlux * area * fitScale
		res.SEUFIT += pt.SEU * b.IntFlux * area * fitScale
		res.MBUFIT += pt.MBU * b.IntFlux * area * fitScale
	}
	if res.SEUFIT > 0 {
		res.MBUToSEU = 100 * res.MBUFIT / res.SEUFIT
	}
	return res, nil
}
