package core

import (
	"finser/internal/geom"
	"finser/internal/phys"
	"finser/internal/sram"
	"finser/internal/transport"
)

// strikeScratch is the per-worker reusable state of the strike hot paths.
// Every per-particle intermediate the engine used to allocate — the
// broad-phase candidate list, the transport box/deposit buffers, the
// per-cell charge accumulator, the POF list — lives here instead, so the
// steady-state Monte-Carlo loop performs zero heap allocations: millions
// of strikes stop feeding the GC, which is what lets worker throughput
// scale with cores instead of with collector headroom.
//
// A scratch must not be shared between concurrent strikes. Workers obtain
// one from Engine.getScratch at loop start and return it with putScratch;
// the pool keeps warm buffers across POFAtEnergy calls.
type strikeScratch struct {
	candidate []int               // broad-phase candidate fin indices
	boxes     []geom.AABB         // candidate fin boxes handed to transport
	deps      []transport.Deposit // per-track deposits
	tr        transport.TraceScratch
	chords    []chordSeg // neutron forced-interaction silicon chords

	// Dense per-cell charge accumulator, replacing the per-strike
	// map[int]*[NumAxes]float64: cellQ[ci] holds the sensitive-axis
	// charges of cell ci and is valid iff cellEpoch[ci] == epoch, so
	// "clearing" the accumulator between strikes is a single epoch bump.
	// touched lists the valid cell indices in first-touch order; callers
	// sort it before any float-order-sensitive reduction.
	cellQ     [][sram.NumAxes]float64
	cellEpoch []uint64
	epoch     uint64
	touched   []int

	pofs []float64 // per-cell POFs fed to combinePOFs
}

// chordSeg is one silicon chord of a neutron track (entry parameter and
// length along the ray).
type chordSeg struct {
	tIn, len float64
}

// newStrikeScratch sizes the dense accumulator for an nCells array.
func newStrikeScratch(nCells int) *strikeScratch {
	return &strikeScratch{
		cellQ:     make([][sram.NumAxes]float64, nCells),
		cellEpoch: make([]uint64, nCells),
	}
}

// getScratch hands out a warm per-worker scratch from the engine pool.
func (e *Engine) getScratch() *strikeScratch {
	return e.scratch.Get().(*strikeScratch)
}

// putScratch returns a scratch to the pool for the next worker.
func (e *Engine) putScratch(s *strikeScratch) { e.scratch.Put(s) }

// beginCells resets the per-cell charge accumulator for a new particle.
func (s *strikeScratch) beginCells() {
	s.epoch++
	s.touched = s.touched[:0]
}

// addCharge accumulates charge q on the cell's sensitive axis, registering
// the cell as touched on first contact this strike.
func (s *strikeScratch) addCharge(ci int, axis sram.Axis, q float64) {
	if s.cellEpoch[ci] != s.epoch {
		s.cellEpoch[ci] = s.epoch
		s.cellQ[ci] = [sram.NumAxes]float64{}
		s.touched = append(s.touched, ci)
	}
	s.cellQ[ci][axis] += q
}

// sortTouched orders the struck cells by dense cell index. Struck-cell
// multiplicity is tiny (one track crosses a handful of cells), so an
// allocation-free insertion sort beats any library sort here. The sorted
// order is what makes the float-sensitive combinePOFs reduction
// bit-identical across runs — the old map iteration visited cells in
// randomized order.
func (s *strikeScratch) sortTouched() {
	t := s.touched
	for i := 1; i < len(t); i++ {
		for j := i; j > 0 && t[j] < t[j-1]; j-- {
			t[j], t[j-1] = t[j-1], t[j]
		}
	}
}

// accumulateCharges converts one track's deposits into per-cell
// sensitive-axis charges in scr and returns the total charge landed on
// sensitive transistors (the conservation-guard reference). candidate maps
// Deposit.Fin back to global fin indices, exactly as passed to transport.
func (e *Engine) accumulateCharges(scr *strikeScratch, candidate []int, deps []transport.Deposit) float64 {
	fins := e.arr.Fins()
	deposited := 0.0
	for _, d := range deps {
		f := fins[candidate[d.Fin]]
		bit := e.cfg.Pattern.Bit(f.Row, f.Col)
		axis, sensitive := sram.SensitiveAxisForRole(f.Role, bit)
		if !sensitive {
			continue // the paper discards charge on non-sensitive transistors
		}
		q := phys.ChargeFromPairs(d.Pairs)
		scr.addCharge(e.arr.CellIndex(f.Row, f.Col), axis, q)
		deposited += q
	}
	return deposited
}

// candidateBoxes fills scr.boxes with the AABBs of the candidate fins.
func (e *Engine) candidateBoxes(scr *strikeScratch, candidate []int) []geom.AABB {
	boxes := scr.boxes[:0]
	for _, fi := range candidate {
		boxes = append(boxes, e.boxes[fi])
	}
	scr.boxes = boxes
	return boxes
}
