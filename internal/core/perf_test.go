package core

import (
	"context"
	"testing"

	"finser/internal/finfet"
	"finser/internal/guard"
	"finser/internal/lut"
	"finser/internal/phys"
	"finser/internal/rng"
	"finser/internal/sram"
	"finser/internal/transport"
)

// TestPOFAtEnergyBitIdentical: the per-strike charge reduction iterates
// struck cells in sorted cell order, so two engines built from the same
// configuration and seeded identically must produce bit-identical POF
// estimates — not merely statistically equal ones. This is the regression
// test for the old per-strike map, whose randomized iteration order fed the
// float-order-sensitive combinePOFs reductions.
func TestPOFAtEnergyBitIdentical(t *testing.T) {
	ch, _, _ := fixtures(t)
	run := func() POFPoint {
		return engineWith(t, ch).POFAtEnergy(phys.Alpha, 1, 20000, 42)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("POFAtEnergy not bit-identical across engines:\n%+v\n%+v", a, b)
	}
}

// TestStrikeZeroAlloc asserts the steady-state strike path allocates
// nothing, for both deposit modes and with the guard both off and in warn
// mode (warn is the serflow default, so a guard-only allocation would tax
// every production strike). The scratch buffers grow during warm-up; after
// that every strike must run entirely on reused memory.
func TestStrikeZeroAlloc(t *testing.T) {
	ch, _, _ := fixtures(t)
	for _, mode := range []struct {
		name     string
		deposits DepositMode
	}{
		{"transport", DepositTransport},
		{"lut", DepositLUT},
	} {
		for _, gm := range []struct {
			name  string
			guard *guard.Guard
		}{
			{"guard-off", nil},
			{"guard-warn", guard.New(guard.Warn, nil, nil)},
		} {
			t.Run(mode.name+"/"+gm.name, func(t *testing.T) {
				e, err := New(Config{
					Tech: finfet.Default14nmSOI(), Rows: 9, Cols: 9,
					Char: ch, Transport: transport.DefaultConfig(),
					Deposits: mode.deposits, Guard: gm.guard,
					LUTIters: 2000,
				})
				if err != nil {
					t.Fatal(err)
				}
				var yieldTab *lut.Table1D
				if mode.deposits == DepositLUT {
					if yieldTab, err = e.ensureYieldLUT(context.Background(), phys.Alpha); err != nil {
						t.Fatal(err)
					}
				}
				src := rng.New(7)
				scr := e.getScratch()
				defer e.putScratch(scr)
				for i := 0; i < 2000; i++ { // grow scratch to steady state
					if _, err := e.strike(src, phys.Alpha, 1, yieldTab, scr); err != nil {
						t.Fatal(err)
					}
				}
				allocs := testing.AllocsPerRun(500, func() {
					if _, err := e.strike(src, phys.Alpha, 1, yieldTab, scr); err != nil {
						t.Fatal(err)
					}
				})
				if allocs != 0 {
					t.Errorf("strike allocates %v objects/op in steady state, want 0", allocs)
				}
			})
		}
	}
}

// TestGridLUTPOFZeroAlloc pins the LUT evaluation path — the POFProvider
// the paper's array level runs against — at zero allocations.
func TestGridLUTPOFZeroAlloc(t *testing.T) {
	ch, _, _ := fixtures(t)
	g, err := sram.BuildGridLUT(ch, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	qs := [][sram.NumAxes]float64{
		{1e-16, 0, 0},
		{0, 2e-16, 1e-16},
		{1e-16, 2e-16, 3e-16},
	}
	allocs := testing.AllocsPerRun(500, func() {
		for _, q := range qs {
			_ = g.POF(q)
		}
	})
	if allocs != 0 {
		t.Errorf("GridLUT.POF allocates %v objects/op, want 0", allocs)
	}
}
