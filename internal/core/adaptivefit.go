package core

import (
	"context"
	"fmt"
	"math"

	"finser/internal/phys"
	"finser/internal/rng"
	"finser/internal/spectra"
)

// Adaptive FIT mode (Config.FITRelErr > 0): confidence, not particle count,
// is the unit of work. Each energy bin consumes its Monte-Carlo stream in
// fixed-size batches and stops as soon as its POF confidence interval is
// inside a weight-scaled relative tolerance, up to a hard per-bin cap.
//
// Budget reallocation is expressed through the per-bin envelope rather than
// an explicit scheduler: every bin may run anywhere between one batch and
// adaptiveCapBatches× the flat budget, so cheap (saturated, high-flux) bins
// release most of their flat budget after a batch or two while the bins
// where d(FIT)/d(samples) is largest — the rare-event tail that is still
// outside tolerance — keep drawing batches up to the cap. Because each
// bin's stopping rule depends only on its own sample stream plus the
// statically derivable flux weights, the outcome is identical to a greedy
// marginal-error-reduction scheduler no matter what order bins execute in.
// That order-independence is what keeps a fixed config bit-identical across
// worker counts, checkpoint resume, and the distributed shard merge: shards
// and the single-node loop run the exact same per-bin decision procedure on
// the exact same batch streams.

const (
	// adaptiveFlatBatches splits the flat per-bin budget (ItersPerBin) into
	// this many batches; the batch size is the convergence-check stride.
	adaptiveFlatBatches = 10
	// adaptiveMinBatches is the floor before any bin may declare
	// convergence — one batch still produces a usable variance estimate
	// because the batch itself carries per-strike moments.
	adaptiveMinBatches = 1
	// adaptiveZeroMinBatches is the floor for bins with zero observed POF
	// mass: a single empty batch is not evidence that a rare-event bin is
	// dead, so such bins must consume a second before stopping — 20% of the
	// flat budget with zero upsets. A bin the flat run could even resolve
	// (≳100 expected upsets over the full budget) slips past that floor with
	// probability e⁻²⁰; any upset in those batches reverts the bin to the
	// normal tolerance rule.
	adaptiveZeroMinBatches = 2
	// adaptiveCapBatches is the hard per-bin cap (4× the flat budget) —
	// the bound on how much freed budget an unconverged tail bin can absorb.
	adaptiveCapBatches = 40
)

// BinConv is one energy bin's convergence record under the adaptive FIT
// mode — the metadata that travels alongside the physics-only POFPoint
// through checkpoints, results, bin events, and distributed shard merges.
type BinConv struct {
	// RelErr is the achieved stderr/mean of POFtot (0 for a zero-mean bin).
	RelErr float64 `json:"rel_err"`
	// Tol is the bin's weight-scaled relative-error target.
	Tol float64 `json:"tol"`
	// Converged reports whether the bin stopped inside tolerance (true) or
	// hit the per-bin cap (false).
	Converged bool `json:"converged"`
	// Batches is the number of fixed-size batches consumed.
	Batches int `json:"batches"`
	// StrikesSaved is the flat budget minus the particles actually
	// consumed — negative when the bin overran its flat budget chasing
	// tolerance.
	StrikesSaved int `json:"strikes_saved"`
}

// adaptiveBatchSize returns the fixed batch stride for a flat per-bin
// budget: ceil(itersPerBin / adaptiveFlatBatches), so ten batches replay
// the flat budget (the last possibly overshooting by < one batch).
func adaptiveBatchSize(itersPerBin int) int {
	return (itersPerBin + adaptiveFlatBatches - 1) / adaptiveFlatBatches
}

// adaptiveTols returns each bin's relative-error target under the global
// tolerance relErr, scaled by the bin's weight in the FIT integral so cheap
// bins are not over-polished: a bin carrying flux share sᵢ of the spectrum
// gets tolᵢ = relErr / √(nBins·sᵢ) — equal-variance-contribution allocation
// for the Eq. 8 sum, where a bin's FIT variance enters as (share·relerr)².
// Targets are clamped to [relErr, 10·relErr]: no bin is asked to beat the
// global target, and negligible-flux bins are not polished past 10× of it.
// The weights are a pure function of the bin plan, so every shard, worker,
// and resume derives the identical targets.
func adaptiveTols(bins []spectra.EnergyBin, relErr float64) []float64 {
	totalFlux := 0.0
	for _, b := range bins {
		totalFlux += b.IntFlux
	}
	tols := make([]float64, len(bins))
	for i, b := range bins {
		tol := 10 * relErr
		if totalFlux > 0 && b.IntFlux > 0 {
			tol = relErr / math.Sqrt(float64(len(bins))*b.IntFlux/totalFlux)
		}
		if tol < relErr {
			tol = relErr
		}
		if tol > 10*relErr {
			tol = 10 * relErr
		}
		tols[i] = tol
	}
	return tols
}

// adaptiveBinDone is the per-bin stopping rule shared by every adaptive
// call site: inside tolerance once the mean is positive, or — for bins with
// zero observed POF mass — after the zero-mass batch floor.
func adaptiveBinDone(est *BinEstimator, tol float64) bool {
	if est.Batches() < adaptiveMinBatches {
		return false
	}
	if est.Mean() > 0 {
		return est.RelErr() <= tol
	}
	return est.Batches() >= adaptiveZeroMinBatches
}

// adaptiveHopeless reports whether a bin that has consumed at least its
// flat-equivalent budget provably cannot converge within the per-bin cap:
// relative error shrinks as 1/√n, so reaching tol from the current estimate
// takes ~batches·(relErr/tol)² total batches; once that projection exceeds
// the cap, the remaining budget cannot change the verdict. Such bins — the
// deep rare-event tail, where tolerance may demand orders of magnitude more
// particles than even the cap allows — stop at the flat budget and report
// unconverged instead of burning 4× flat to reach the same unconverged
// state. The projection uses only the bin's own stream, preserving
// order-independence. Bins below the flat budget are never bailed: an early
// variance estimate is too noisy to write off a bin that the flat run would
// have sampled anyway.
func adaptiveHopeless(est *BinEstimator, tol float64) bool {
	if est.Batches() < adaptiveFlatBatches || est.Mean() <= 0 {
		return false
	}
	rel := est.RelErr() / tol
	return float64(est.Batches())*rel*rel > adaptiveCapBatches
}

// adaptivePOFBin runs one energy bin's batched stream until its confidence
// interval enters tol, convergence within the cap becomes provably
// unreachable, or the per-bin cap is reached. Batch seeds are drawn
// strictly in sequence from rng.New(binSeed) — the same consumption order
// as FITSeedSchedule gives the bin — so the result depends only on
// (config, bin seed), never on which worker, shard, resume attempt, or
// reallocation order ran it; stopping early merely leaves later draws
// untaken.
func (e *Engine) adaptivePOFBin(ctx context.Context, sp phys.Species, energyMeV float64, itersPerBin int, binSeed uint64, tol float64) (POFPoint, BinConv, error) {
	batch := adaptiveBatchSize(itersPerBin)
	src := rng.New(binSeed)
	var est BinEstimator
	conv := BinConv{Tol: tol}
	for est.Batches() < adaptiveCapBatches {
		pt, err := e.POFAtEnergyCtx(ctx, sp, energyMeV, batch, src.Uint64())
		if err != nil {
			return POFPoint{}, BinConv{}, err
		}
		est.AddBatch(pt)
		if adaptiveBinDone(&est, tol) {
			conv.Converged = true
			break
		}
		if adaptiveHopeless(&est, tol) {
			break
		}
	}
	conv.RelErr = est.RelErr()
	conv.Batches = est.Batches()
	conv.StrikesSaved = itersPerBin - est.Strikes()
	if m := e.cfg.Metrics; m != nil {
		if conv.StrikesSaved > 0 {
			m.AdaptiveEarlyStops.Inc()
			m.AdaptiveStrikesSaved.Add(int64(conv.StrikesSaved))
		} else if conv.StrikesSaved < 0 {
			m.AdaptiveStrikesOverrun.Add(int64(-conv.StrikesSaved))
		}
	}
	return est.Point(), conv, nil
}

// CheckBinConv validates one convergence record against its POF point —
// used on records restored from checkpoints and decoded from distributed
// shard responses, both trust boundaries.
func CheckBinConv(c BinConv, pt POFPoint) error {
	if !(c.RelErr >= 0) || math.IsInf(c.RelErr, 0) {
		return fmt.Errorf("core: invalid bin convergence record: rel_err %g", c.RelErr)
	}
	if !(c.Tol > 0) || math.IsInf(c.Tol, 0) {
		return fmt.Errorf("core: invalid bin convergence record: tol %g", c.Tol)
	}
	if c.Batches < adaptiveMinBatches || c.Batches > adaptiveCapBatches {
		return fmt.Errorf("core: invalid bin convergence record: %d batches", c.Batches)
	}
	if pt.Strikes <= 0 || pt.Strikes%c.Batches != 0 {
		return fmt.Errorf("core: bin convergence record inconsistent with its point: %d strikes over %d batches", pt.Strikes, c.Batches)
	}
	return nil
}
