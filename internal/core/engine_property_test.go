package core

import (
	"testing"

	"finser/internal/finfet"
	"finser/internal/neutron"
	"finser/internal/phys"
	"finser/internal/rng"
	"finser/internal/sram"
	"finser/internal/transport"
)

// TestBroadPhaseComplete verifies that the cell-bounds culling never drops
// a fin the ray would actually hit: candidateFins must be a superset of the
// brute-force hit set for random rays.
func TestBroadPhaseComplete(t *testing.T) {
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	src := rng.New(99)
	for trial := 0; trial < 5000; trial++ {
		ray := e.sampleRay(src, phys.Alpha)
		inCandidate := map[int]bool{}
		for _, fi := range candidateFins(e, ray) {
			inCandidate[fi] = true
		}
		for fi, box := range e.boxes {
			if _, _, ok := box.Intersect(ray); ok && !inCandidate[fi] {
				t.Fatalf("broad phase dropped hit fin %d for ray %+v", fi, ray)
			}
		}
	}
}

// TestWorkerCountInvariance: the POF estimate must be identical regardless
// of how many workers execute it (per-sample substreams are pre-assigned).
func TestWorkerCountInvariance(t *testing.T) {
	ch, _, _ := fixtures(t)
	mk := func(workers int) *Engine {
		e, err := New(Config{
			Tech: finfet.Default14nmSOI(), Rows: 9, Cols: 9,
			Char: ch, Transport: transport.DefaultConfig(), Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	// NOTE: worker goroutines own distinct substreams, so the estimate
	// depends on the worker count by design; what must hold is determinism
	// per (seed, workers) pair and statistical agreement across counts.
	a1 := mk(1).POFAtEnergy(phys.Alpha, 1, 20000, 5)
	a2 := mk(1).POFAtEnergy(phys.Alpha, 1, 20000, 5)
	if a1.Tot != a2.Tot {
		t.Fatal("single-worker runs not deterministic")
	}
	b := mk(4).POFAtEnergy(phys.Alpha, 1, 20000, 5)
	if b.Tot <= 0 {
		t.Fatal("multi-worker run returned zero POF")
	}
	// Statistical agreement within 5 combined standard errors.
	diff := a1.Tot - b.Tot
	if diff < 0 {
		diff = -diff
	}
	band := 5 * (a1.TotStdErr + b.TotStdErr)
	if diff > band {
		t.Errorf("worker counts disagree beyond noise: %v vs %v (band %v)", a1.Tot, b.Tot, band)
	}
}

// TestSubstrateDepthAblation: deepening the neutron substrate volume must
// not decrease the interaction weight, and a negligible substrate must
// reduce the neutron response to the fin-only level.
func TestSubstrateDepthAblation(t *testing.T) {
	ch, _, _ := fixtures(t)
	mk := func(depth float64) *Engine {
		e, err := New(Config{
			Tech: finfet.Default14nmSOI(), Rows: 9, Cols: 9,
			Char: ch, Transport: transport.DefaultConfig(),
			NeutronSubstrateDepthNm: depth,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	rx := neutron.NewReactions()
	shallow := mk(1).NeutronPOFAtEnergy(rx, 14, 30000, 7)
	deep := mk(3000).NeutronPOFAtEnergy(rx, 14, 30000, 7)
	if deep.InteractionWeight <= shallow.InteractionWeight {
		t.Errorf("deep substrate weight %v not above shallow %v",
			deep.InteractionWeight, shallow.InteractionWeight)
	}
	if deep.Tot <= shallow.Tot {
		t.Errorf("deep substrate POF %v not above shallow %v", deep.Tot, shallow.Tot)
	}
}

// TestSubstrateSlabGeometry checks the slab sits strictly below the BOX.
func TestSubstrateSlabGeometry(t *testing.T) {
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	slab, ok := e.substrateSlab()
	if !ok {
		t.Fatal("no substrate slab with default config")
	}
	tech := finfet.Default14nmSOI()
	if slab.Max.Z != -tech.BoxDepthNm {
		t.Errorf("slab top = %v, want %v", slab.Max.Z, -tech.BoxDepthNm)
	}
	if slab.Min.Z != -tech.BoxDepthNm-3000 {
		t.Errorf("slab bottom = %v", slab.Min.Z)
	}
	b := e.arr.Bounds()
	if slab.Min.X != b.Min.X || slab.Max.X != b.Max.X {
		t.Error("slab footprint does not match array")
	}
	// No fin box may intrude into the slab.
	for _, fin := range e.boxes {
		if fin.Min.Z < slab.Max.Z {
			t.Fatalf("fin %+v dips below the BOX", fin)
		}
	}
}

// TestEngineStrikeNoDepositsOutsideArray: rays sampled on the top face with
// downward directions can exit the sides; deposits must still never appear
// for fins the ray cannot geometrically reach.
func TestStrikeChargeSanity(t *testing.T) {
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	src := rng.New(123)
	scr := e.getScratch()
	defer e.putScratch(scr)
	for i := 0; i < 2000; i++ {
		o, err := e.strike(src, phys.Alpha, 1, nil, scr)
		if err != nil {
			t.Fatalf("strike: %v", err)
		}
		if o.pofTot < 0 || o.pofTot > 1 || o.pofSEU < 0 || o.pofMBU < 0 {
			t.Fatalf("POF out of range: %+v", o)
		}
		if o.pofTot == 0 && o.pofMBU != 0 {
			t.Fatalf("MBU without total POF: %+v", o)
		}
	}
}

// TestGeomRayEntersFromTop: sampled rays originate on the top face and
// point downward.
func TestSampleRayGeometry(t *testing.T) {
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	src := rng.New(7)
	top := e.arr.Bounds().Max.Z
	for i := 0; i < 5000; i++ {
		for _, sp := range []phys.Species{phys.Alpha, phys.Proton} {
			r := e.sampleRay(src, sp)
			if r.Origin.Z != top {
				t.Fatalf("ray origin z = %v, want top %v", r.Origin.Z, top)
			}
			if r.Dir.Z > 0 {
				t.Fatalf("upward ray sampled: %+v", r)
			}
			if d := r.Dir.Norm(); d < 1-1e-9 || d > 1+1e-9 {
				t.Fatalf("ray direction not unit: %v", d)
			}
		}
	}
}

func TestMultiFinArrayStrikes(t *testing.T) {
	// Upsized pull-downs double the PD target area: the per-particle hit
	// fraction must rise relative to the single-fin cell, while the flip
	// behaviour stays consistent (PD fins are not sensitive for the bit
	// they hold low, so POF moves far less than the target area).
	ch, _, _ := fixtures(t)
	base := engineWith(t, ch)
	tech2 := finfet.Default14nmSOI()
	tech2.FinsPD = 2
	tech2.FinsPG = 2
	e2, err := New(Config{
		Tech: tech2, Rows: 9, Cols: 9, Char: ch,
		Transport: transport.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(e2.boxes) != 2*len(base.boxes)-9*9*2*1 { // 10 fins vs 6 per cell
		// 6 roles: PD×2 + PG×2 + PU×1 ×2 sides = 10 fins/cell vs 6.
		t.Logf("fin counts: base %d, multi %d", len(base.boxes), len(e2.boxes))
	}
	pBase := base.POFAtEnergy(phys.Alpha, 1, 30000, 3)
	pMulti := e2.POFAtEnergy(phys.Alpha, 1, 30000, 3)
	if pMulti.HitFrac <= pBase.HitFrac {
		t.Errorf("multi-fin hit fraction %v not above base %v", pMulti.HitFrac, pBase.HitFrac)
	}
	if pMulti.Tot <= 0 {
		t.Fatal("multi-fin POF zero")
	}
}

func TestAsymmetricProvidersPerState(t *testing.T) {
	// With distinct POF models per stored state, a checkerboard pattern
	// must blend them: a "never flips" model on the 1-cells halves the POF
	// relative to using the live model everywhere.
	ch, _, _ := fixtures(t)
	mk := func(one sram.POFProvider) *Engine {
		e, err := New(Config{
			Tech: finfet.Default14nmSOI(), Rows: 9, Cols: 9,
			Char: ch, CharOne: one,
			Transport: transport.DefaultConfig(),
			Pattern:   PatternCheckerboard,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	both := mk(nil).POFAtEnergy(phys.Alpha, 1, 40000, 3)
	half := mk(deadProvider{vdd: ch.Vdd}).POFAtEnergy(phys.Alpha, 1, 40000, 3)
	if half.Tot <= 0 {
		t.Fatal("zero POF with dead provider on half the cells")
	}
	r := half.Tot / both.Tot
	if r < 0.3 || r > 0.7 {
		t.Errorf("dead-provider-on-ones POF ratio = %v, want ≈ 0.5", r)
	}
}

// deadProvider never flips — a stand-in for a maximally hardened state.
type deadProvider struct{ vdd float64 }

func (d deadProvider) POF([sram.NumAxes]float64) float64 { return 0 }
func (d deadProvider) SupplyVoltage() float64            { return d.vdd }
