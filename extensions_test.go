package finser

import (
	"math"
	"testing"
)

// Integration tests for the public API surface beyond the paper's core
// flow: neutron SER, MBU/ECC analysis, deposit-mode selection, and
// altitude scaling.

func TestNeutronFacade(t *testing.T) {
	res := sharedFlow(t)
	eng, err := NewEngine(EngineConfig{
		Tech: Default14nmSOI(), Rows: 9, Cols: 9,
		Char: res.Char, Transport: DefaultTransport(),
	})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := NewNeutronSpectrum(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNeutronSpectrum(0); err == nil {
		t.Error("zero neutron scale accepted")
	}
	bins, err := Bins(spec, 2, 1000, 6)
	if err != nil {
		t.Fatal(err)
	}
	nRes, err := eng.NeutronFIT(spec, NewNeutronReactions(), bins, 15000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if nRes.TotalFIT <= 0 {
		t.Fatal("neutron FIT zero through the facade")
	}
	// SOI suppression: neutron FIT well below alpha FIT.
	if nRes.TotalFIT >= res.Alpha.TotalFIT {
		t.Errorf("neutron FIT %v not below alpha %v", nRes.TotalFIT, res.Alpha.TotalFIT)
	}
}

func TestMBUAndECCFacade(t *testing.T) {
	res := sharedFlow(t)
	eng, err := NewEngine(EngineConfig{
		Tech: Default14nmSOI(), Rows: 9, Cols: 9,
		Char: res.Char, Transport: DefaultTransport(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := eng.MBUStatsAtEnergy(Alpha, 1, 30000, 6, 5)
	if rep.TotalPairWeight() <= 0 {
		t.Fatal("no MBU pairs through the facade")
	}
	analyses, err := ECCInterleaveSweep(rep, []int{1, 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	if analyses[0].UncorrectableShare <= analyses[1].UncorrectableShare {
		t.Error("interleaving did not reduce the uncorrectable share")
	}
	residual := ResidualMBUFIT(res.Alpha.MBUFIT, analyses[1])
	if residual < 0 || residual > res.Alpha.MBUFIT {
		t.Errorf("residual FIT %v outside [0, MBU FIT]", residual)
	}
	if _, err := AnalyzeECC(rep, ECCScheme{Interleave: 0}); err == nil {
		t.Error("invalid scheme accepted")
	}
}

func TestDepositModeFacade(t *testing.T) {
	res := sharedFlow(t)
	lutEng, err := NewEngine(EngineConfig{
		Tech: Default14nmSOI(), Rows: 9, Cols: 9,
		Char: res.Char, Transport: DefaultTransport(),
		Deposits: DepositLUT, LUTIters: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := POFCurve(lutEng, Alpha, []float64{1}, 8000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Tot <= 0 {
		t.Error("LUT deposit mode produced zero POF via the facade")
	}
}

func TestAltitudeScaleFacade(t *testing.T) {
	if AltitudeScale(0) != 1 {
		t.Error("sea level scale should be 1")
	}
	denver := AltitudeScale(1600)
	if denver <= 1 {
		t.Error("altitude scale should exceed 1 above sea level")
	}
	// Feeds directly into the proton spectrum.
	p, err := NewProtonSpectrum(denver)
	if err != nil {
		t.Fatal(err)
	}
	p0, _ := NewProtonSpectrum(1)
	r := p.DifferentialFlux(10) / p0.DifferentialFlux(10)
	if math.Abs(r-denver) > 1e-9 {
		t.Errorf("spectrum scale %v != altitude scale %v", r, denver)
	}
}

func TestAdaptiveFacade(t *testing.T) {
	res := sharedFlow(t)
	eng, err := NewEngine(EngineConfig{
		Tech: Default14nmSOI(), Rows: 9, Cols: 9,
		Char: res.Char, Transport: DefaultTransport(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ad, err := eng.POFAtEnergyAdaptive(Alpha, 1, AdaptiveSpec{
		TargetRelErr: 0.1, BatchSize: 4000, MaxStrikes: 200000,
	}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !ad.Converged {
		t.Errorf("adaptive estimate did not converge in %d strikes", ad.Strikes)
	}
}

func TestGridLUTFacade(t *testing.T) {
	res := sharedFlow(t)
	grid, err := BuildGridLUT(res.Char, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if grid.SupplyVoltage() != res.Char.Vdd {
		t.Error("grid LUT supply voltage mismatch")
	}
	// The serialized LUT drives the engine directly.
	eng, err := NewEngine(EngineConfig{
		Tech: Default14nmSOI(), Rows: 9, Cols: 9,
		Char: grid, Transport: DefaultTransport(),
	})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := POFCurve(eng, Alpha, []float64{1}, 8000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Tot <= 0 {
		t.Error("grid-LUT-driven engine gave zero POF")
	}
}

func TestScrubAndLifetimeFacade(t *testing.T) {
	sc := ScrubConfig{Words: 1 << 16, SEUFIT: 500, MBUFIT: 20, UncorrectableShare: 0.05}
	if sc.UncorrectableFIT(24) < sc.MBUFloorFIT() {
		t.Error("scrub model floor violated")
	}
	if MTTFHours(1e9) != 1 {
		t.Error("MTTF conversion wrong")
	}
	res, err := SimulateLifetime(LifetimeConfig{
		Words:              1 << 10,
		SEURatePerHour:     0.2,
		ScrubIntervalHours: 10,
		MaxHours:           1e5,
	}, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 50 {
		t.Errorf("trials = %d", res.Trials)
	}
}
