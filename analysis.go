package finser

import (
	"context"
	"errors"

	"finser/internal/geom"
	"finser/internal/lut"
	"finser/internal/rng"
	"finser/internal/transport"
)

// YieldPoint is one point of the single-fin electron-yield curve (the
// paper's Fig. 4).
type YieldPoint struct {
	EnergyMeV float64
	MeanPairs float64
	StdPairs  float64
}

// FinYieldCurve runs the device-level Monte Carlo (the paper's Geant4
// stage) for one fin of the technology: for each energy it samples iters
// flux-uniform secants through the fin and records the electron–hole yield
// statistics.
func FinYieldCurve(tech Technology, sp Species, energiesMeV []float64, iters int, seed uint64) ([]YieldPoint, error) {
	if len(energiesMeV) == 0 {
		return nil, errors.New("finser: FinYieldCurve needs energies")
	}
	if iters <= 0 {
		return nil, errors.New("finser: FinYieldCurve needs positive iters")
	}
	fin := geom.BoxAt(geom.V(0, 0, 0),
		geom.V(tech.FinWidthNm, tech.GateLengthNm, tech.FinHeightNm))
	cfg := transport.DefaultConfig()
	src := rng.New(seed)
	out := make([]YieldPoint, 0, len(energiesMeV))
	for _, e := range energiesMeV {
		ys := transport.FinYield(cfg, sp, e, fin, iters, src)
		out = append(out, YieldPoint{EnergyMeV: e, MeanPairs: ys.MeanPairs, StdPairs: ys.StdPairs})
	}
	return out, nil
}

// POFCurve estimates the array POF at each energy (the paper's Fig. 8
// series): the probability of at least one bit flip given a particle of
// that energy striking the array footprint.
func POFCurve(e *Engine, sp Species, energiesMeV []float64, itersPerEnergy int, seed uint64) ([]POFPoint, error) {
	return POFCurveCtx(context.Background(), e, sp, energiesMeV, itersPerEnergy, seed)
}

// POFCurveCtx is POFCurve with cooperative cancellation between (and
// inside) energy points; a worker panic fails the curve with a stack-
// carrying error instead of crashing the process.
func POFCurveCtx(ctx context.Context, e *Engine, sp Species, energiesMeV []float64, itersPerEnergy int, seed uint64) ([]POFPoint, error) {
	if len(energiesMeV) == 0 {
		return nil, errors.New("finser: POFCurve needs energies")
	}
	if itersPerEnergy <= 0 {
		return nil, errors.New("finser: POFCurve needs positive iterations")
	}
	src := rng.New(seed)
	out := make([]POFPoint, 0, len(energiesMeV))
	for _, en := range energiesMeV {
		pt, err := e.POFAtEnergyCtx(ctx, sp, en, itersPerEnergy, src.Uint64())
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// SpectrumPoint is one point of a differential flux curve (Fig. 2).
type SpectrumPoint struct {
	EnergyMeV float64
	// Flux is the differential flux in particles/(cm²·s·MeV).
	Flux float64
}

// SpectrumCurve samples a spectrum's differential flux at n log-spaced
// energies across its domain.
func SpectrumCurve(s Spectrum, n int) ([]SpectrumPoint, error) {
	if n < 2 {
		return nil, errors.New("finser: SpectrumCurve needs n >= 2")
	}
	lo, hi := s.Domain()
	out := make([]SpectrumPoint, 0, n)
	for _, e := range logSpace(lo, hi, n) {
		out = append(out, SpectrumPoint{EnergyMeV: e, Flux: s.DifferentialFlux(e)})
	}
	return out, nil
}

// LogSpace re-exports geometric grids for sweep construction.
func LogSpace(lo, hi float64, n int) []float64 { return logSpace(lo, hi, n) }

func logSpace(lo, hi float64, n int) []float64 {
	return lut.LogSpace(lo, hi, n)
}
