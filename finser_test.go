package finser

import (
	"math"
	"sync"
	"testing"
)

// Small-budget flow shared across tests.
var (
	flowOnce sync.Once
	flowRes  *FlowResult
	flowErr  error
)

func smallFlowConfig() FlowConfig {
	return FlowConfig{
		Vdd:              0.7,
		ProcessVariation: true,
		Samples:          40,
		ItersPerBin:      4000,
		AlphaBins:        6,
		ProtonBins:       8,
		Seed:             1,
	}
}

func sharedFlow(t *testing.T) *FlowResult {
	t.Helper()
	flowOnce.Do(func() {
		flowRes, flowErr = RunFlow(smallFlowConfig())
	})
	if flowErr != nil {
		t.Fatal(flowErr)
	}
	return flowRes
}

func TestFlowConfigValidation(t *testing.T) {
	if _, err := RunFlow(FlowConfig{}); err == nil {
		t.Error("zero Vdd accepted")
	}
	if _, err := RunVddSweep(FlowConfig{}, nil); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestRunFlowProducesPositiveRates(t *testing.T) {
	res := sharedFlow(t)
	if res.Vdd != 0.7 {
		t.Errorf("vdd = %v", res.Vdd)
	}
	if res.Alpha.TotalFIT <= 0 {
		t.Error("alpha FIT not positive")
	}
	if res.Proton.TotalFIT <= 0 {
		t.Error("proton FIT not positive")
	}
	if res.Char == nil {
		t.Error("characterization not returned")
	}
	// Paper claim 2: at 0.7 V, proton SER is comparable to alpha SER —
	// same order of magnitude.
	r := res.Proton.TotalFIT / res.Alpha.TotalFIT
	if r < 0.1 || r > 10 {
		t.Errorf("proton/alpha FIT at 0.7 V = %v, want same order", r)
	}
	// Paper claim 3: alpha MBU/SEU ratio well above proton's.
	if res.Alpha.MBUToSEU <= res.Proton.MBUToSEU {
		t.Errorf("alpha MBU/SEU %v%% not above proton %v%%",
			res.Alpha.MBUToSEU, res.Proton.MBUToSEU)
	}
}

func TestRunFlowDeterministic(t *testing.T) {
	res := sharedFlow(t)
	again, err := RunFlow(smallFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	if again.Alpha.TotalFIT != res.Alpha.TotalFIT || again.Proton.TotalFIT != res.Proton.TotalFIT {
		t.Error("identical configs gave different FIT rates")
	}
}

func TestRunFlowWithCharReuses(t *testing.T) {
	res := sharedFlow(t)
	cfg := smallFlowConfig()
	again, err := RunFlowWithChar(cfg, res.Char)
	if err != nil {
		t.Fatal(err)
	}
	if again.Alpha.TotalFIT != res.Alpha.TotalFIT {
		t.Error("reused characterization changed the result")
	}
}

func TestVddSweepOrdering(t *testing.T) {
	// Paper claim 1: SER increases at lower supply voltages.
	cfg := smallFlowConfig()
	cfg.Samples = 30
	cfg.ItersPerBin = 3000
	results, err := RunVddSweep(cfg, []float64{0.7, 1.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Alpha.TotalFIT <= results[1].Alpha.TotalFIT {
		t.Errorf("alpha FIT not higher at 0.7 V: %v vs %v",
			results[0].Alpha.TotalFIT, results[1].Alpha.TotalFIT)
	}
	if results[0].Proton.TotalFIT <= results[1].Proton.TotalFIT {
		t.Errorf("proton FIT not higher at 0.7 V: %v vs %v",
			results[0].Proton.TotalFIT, results[1].Proton.TotalFIT)
	}
	// Paper claim 2 (slope): proton SER falls faster with Vdd than alpha.
	alphaDrop := results[0].Alpha.TotalFIT / results[1].Alpha.TotalFIT
	protonDrop := results[0].Proton.TotalFIT / results[1].Proton.TotalFIT
	if protonDrop <= alphaDrop {
		t.Errorf("proton Vdd slope (×%v) not steeper than alpha (×%v)",
			protonDrop, alphaDrop)
	}
}

func TestFinYieldCurve(t *testing.T) {
	tech := Default14nmSOI()
	energies := []float64{0.5, 1, 2, 5, 10}
	alpha, err := FinYieldCurve(tech, Alpha, energies, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	proton, err := FinYieldCurve(tech, Proton, energies, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range energies {
		if alpha[i].MeanPairs <= proton[i].MeanPairs {
			t.Errorf("at %v MeV alpha yield %v <= proton %v",
				energies[i], alpha[i].MeanPairs, proton[i].MeanPairs)
		}
	}
	// Decreasing with energy above the Bragg peak (Fig. 4 shape).
	if alpha[0].MeanPairs <= alpha[len(alpha)-1].MeanPairs {
		t.Error("alpha yield not decreasing with energy")
	}
	if _, err := FinYieldCurve(tech, Alpha, nil, 10, 1); err == nil {
		t.Error("empty energies accepted")
	}
	if _, err := FinYieldCurve(tech, Alpha, energies, 0, 1); err == nil {
		t.Error("zero iters accepted")
	}
}

func TestPOFCurve(t *testing.T) {
	res := sharedFlow(t)
	eng, err := NewEngine(EngineConfig{
		Tech: Default14nmSOI(), Rows: 9, Cols: 9,
		Char: res.Char, Transport: DefaultTransport(),
	})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := POFCurve(eng, Alpha, []float64{1, 10}, 5000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Tot <= pts[1].Tot {
		t.Errorf("POF curve wrong: %+v", pts)
	}
	if _, err := POFCurve(eng, Alpha, nil, 10, 1); err == nil {
		t.Error("empty energies accepted")
	}
	if _, err := POFCurve(eng, Alpha, []float64{1}, 0, 1); err == nil {
		t.Error("zero iters accepted")
	}
}

func TestSpectrumCurve(t *testing.T) {
	s, err := NewAlphaSpectrum(DefaultAlphaRate)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := SpectrumCurve(s, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 20 {
		t.Fatalf("points = %d", len(pts))
	}
	anyPositive := false
	for _, p := range pts {
		if p.Flux < 0 {
			t.Fatal("negative flux point")
		}
		if p.Flux > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		t.Error("all-zero spectrum curve")
	}
	if _, err := SpectrumCurve(s, 1); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestLogSpaceExport(t *testing.T) {
	pts := LogSpace(1, 100, 3)
	if len(pts) != 3 || pts[0] != 1 || math.Abs(pts[1]-10) > 1e-9 || pts[2] != 100 {
		t.Errorf("LogSpace = %v", pts)
	}
}
