module finser

go 1.22
