package finser

import (
	"context"
	"errors"
	"math"
	"testing"
)

// poisonGrid corrupts every single-strike POF value in the LUT to NaN —
// standing in for bit rot, a torn write, or a bad load slipping past the
// boundary checks. The chaos tests arm it behind a fault-injection hook so
// the corruption lands mid-run, after the engine has already produced good
// particles.
func poisonGrid(g *GridLUT) {
	for a := range g.Single {
		for i := range g.Single[a] {
			g.Single[a][i] = math.NaN()
		}
	}
}

// chaosEngine builds a single-worker engine over a private GridLUT copy of
// the shared characterization, with the LUT poisoned at the nth particle.
// One worker keeps the mutation race-free: the corrupting callback runs on
// the same goroutine that reads the LUT.
func chaosEngine(t *testing.T, mode GuardMode, reg *Metrics) *Engine {
	t.Helper()
	grid, err := BuildGridLUT(sharedFlow(t).Char, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	faults := NewFaultHooks()
	faults.CallAt(FaultSiteParticle, 25, func() { poisonGrid(grid) })
	eng, err := NewEngine(EngineConfig{
		Tech:      Default14nmSOI(),
		Rows:      9,
		Cols:      9,
		Char:      grid,
		Transport: DefaultTransport(),
		Workers:   1,
		Faults:    faults,
		Guard:     NewGuard(mode, reg, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestChaosCorruptedLUTStrictFailsBeforeOutput: with the LUT corrupted
// mid-run, a strict guard must fail the stage with a typed InvariantError
// naming the invariant and the stage — a NaN must never reach the POF (and
// hence FIT) output.
func TestChaosCorruptedLUTStrictFailsBeforeOutput(t *testing.T) {
	reg := NewMetrics()
	eng := chaosEngine(t, GuardStrict, reg)
	pt, err := eng.POFAtEnergyCtx(context.Background(), Alpha, 1, 20000, 1)
	if err == nil {
		t.Fatalf("corrupted LUT produced a POF point without error: %+v", pt)
	}
	var inv *InvariantError
	if !errors.As(err, &inv) {
		t.Fatalf("error is %T (%v), want *InvariantError", err, err)
	}
	if inv.Invariant != "pof-range" {
		t.Errorf("invariant = %q, want pof-range", inv.Invariant)
	}
	if inv.Stage != "core.strike" {
		t.Errorf("stage = %q, want core.strike", inv.Stage)
	}
	if !math.IsNaN(inv.Value) {
		t.Errorf("offending value = %v, want NaN", inv.Value)
	}
}

// TestChaosCorruptedLUTWarnCompletesAndCounts: the same corruption under a
// warn guard must let the run complete while counting every violation in
// the metrics registry.
func TestChaosCorruptedLUTWarnCompletesAndCounts(t *testing.T) {
	reg := NewMetrics()
	eng := chaosEngine(t, GuardWarn, reg)
	if _, err := eng.POFAtEnergyCtx(context.Background(), Alpha, 1, 20000, 1); err != nil {
		t.Fatalf("warn mode failed the run: %v", err)
	}
	if n := reg.Counter("guard/violations").Value(); n == 0 {
		t.Error("no guard violations counted despite corrupted LUT")
	}
	if n := reg.Counter("guard/violations/pof-range").Value(); n == 0 {
		t.Error("pof-range violations not counted per invariant")
	}
}

// TestChaosHealthyRunIsGuardClean: strict guarding of an uncorrupted run
// must neither fail nor count violations — the invariants hold on healthy
// physics, so guards can stay on in production.
func TestChaosHealthyRunIsGuardClean(t *testing.T) {
	reg := NewMetrics()
	grid, err := BuildGridLUT(sharedFlow(t).Char, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(EngineConfig{
		Tech: Default14nmSOI(), Rows: 9, Cols: 9,
		Char: grid, Transport: DefaultTransport(),
		Workers: 1, Guard: NewGuard(GuardStrict, reg, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.POFAtEnergyCtx(context.Background(), Alpha, 1, 10000, 1); err != nil {
		t.Fatalf("strict guard tripped on a healthy run: %v", err)
	}
	if n := reg.Counter("guard/violations").Value(); n != 0 {
		t.Errorf("healthy run counted %d violations", n)
	}
}
