// Command layoutviz renders the SRAM array layout (and optionally a set of
// Monte-Carlo particle tracks) as SVG — the visual counterpart of the
// paper's Fig. 5b and its 3-D strike analysis.
//
// Usage:
//
//	layoutviz -rows 9 -cols 9 -out array.svg
//	layoutviz -strikes 200 -species alpha -energy 1 -out strikes.svg
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"finser"
	"finser/internal/core"
	"finser/internal/finfet"
	"finser/internal/layout"
	"finser/internal/phys"
	"finser/internal/svg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("layoutviz: ")

	var (
		rows    = flag.Int("rows", 9, "array rows")
		cols    = flag.Int("cols", 9, "array columns")
		out     = flag.String("out", "array.svg", "output SVG path")
		strikes = flag.Int("strikes", 0, "overlay this many Monte-Carlo tracks (0 = layout only)")
		species = flag.String("species", "alpha", "track species: alpha|proton")
		energy  = flag.Float64("energy", 1, "track energy (MeV)")
		vdd     = flag.Float64("vdd", 0.8, "supply for the POF colouring of tracks")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	tech := finfet.Default14nmSOI()
	arr, err := layout.NewArray(layout.ThinCellLayout(tech), *rows, *cols)
	if err != nil {
		log.Fatal(err)
	}
	bit := func(int, int) bool { return false }

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	if *strikes == 0 {
		if err := svg.RenderArray(f, arr, bit); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%dx%d array, %d fins)\n", *out, *rows, *cols, len(arr.Fins()))
		return
	}

	var sp phys.Species
	switch *species {
	case "alpha":
		sp = phys.Alpha
	case "proton":
		sp = phys.Proton
	default:
		log.Fatalf("unknown species %q", *species)
	}
	char, err := finser.Characterize(finser.CharConfig{
		Tech: tech, Vdd: *vdd, ProcessVariation: true, Samples: 60, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.New(core.Config{
		Tech: tech, Rows: *rows, Cols: *cols, Char: char,
		Transport: finser.DefaultTransport(),
	})
	if err != nil {
		log.Fatal(err)
	}
	infos := eng.SampleTracks(sp, *energy, *strikes, *seed)
	tracks := make([]svg.Track, 0, len(infos))
	nHit, nFlip := 0, 0
	for _, ti := range infos {
		tr := svg.Track{
			Start:      ti.Entry,
			End:        ti.Exit,
			StruckFins: ti.StruckFins,
			Flipped:    ti.POF >= 0.5,
		}
		if len(ti.StruckFins) > 0 {
			nHit++
		}
		if tr.Flipped {
			nFlip++
		}
		tracks = append(tracks, tr)
	}
	if err := svg.RenderStrikes(f, arr, bit, tracks); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d tracks, %d charged a sensitive fin, %d flipped (POF ≥ 0.5)\n",
		*out, len(tracks), nHit, nFlip)
}
