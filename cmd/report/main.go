// Command report runs the complete analysis suite for one configuration —
// cell stability, environment FIT rates (alpha, proton, neutron), MBU
// geometry, and ECC interleaving — and writes a self-contained markdown
// report. It is the "give me the whole picture" entry point.
//
// Usage:
//
//	report -vdd 0.8 -samples 200 -iters 20000 -out REPORT.md
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"finser"
	"finser/internal/sram"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("report: ")

	var (
		vdd     = flag.Float64("vdd", 0.8, "supply voltage (V)")
		rows    = flag.Int("rows", 9, "array rows")
		cols    = flag.Int("cols", 9, "array columns")
		samples = flag.Int("samples", 150, "process-variation samples")
		iters   = flag.Int("iters", 15000, "array-MC particles per energy bin")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("out", "REPORT.md", "output markdown path")
	)
	flag.Parse()

	var sb strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&sb, format+"\n", args...) }

	tech := finser.Default14nmSOI()
	start := time.Now()

	w("# Soft-error analysis report")
	w("")
	w("- technology: `%s` (fin %g×%g nm, Lg %g nm, σVth %g mV)",
		tech.Name, tech.FinWidthNm, tech.FinHeightNm, tech.GateLengthNm, tech.SigmaVth*1e3)
	w("- array: %d×%d 6T cells, Vdd = %.2f V", *rows, *cols, *vdd)
	w("- budgets: %d variation samples, %d particles/bin, seed %d", *samples, *iters, *seed)
	w("")

	// Cell stability.
	w("## Cell stability")
	w("")
	hold, err := sram.StaticNoiseMargin(tech, *vdd, sram.VthShifts{}, sram.HoldMode, 0)
	if err != nil {
		log.Fatal(err)
	}
	read, err := sram.StaticNoiseMargin(tech, *vdd, sram.VthShifts{}, sram.ReadMode, 0)
	if err != nil {
		log.Fatal(err)
	}
	char, err := finser.Characterize(finser.CharConfig{
		Tech: tech, Vdd: *vdd, ProcessVariation: true, Samples: *samples, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	w("| metric | value |")
	w("|---|---|")
	w("| hold SNM | %.0f mV |", hold.SNM*1e3)
	w("| read SNM | %.0f mV |", read.SNM*1e3)
	for a := sram.AxisI1; a < sram.NumAxes; a++ {
		w("| Qcrit median, %s | %.4f fC (%.0f e-h pairs) |",
			a, char.QcritQuantile(a, 0.5)*1e15, char.QcritQuantile(a, 0.5)/1.602176634e-19)
	}
	w("| Qcrit spread (I1, q05–q95) | %.4f – %.4f fC |",
		char.QcritQuantile(sram.AxisI1, 0.05)*1e15, char.QcritQuantile(sram.AxisI1, 0.95)*1e15)
	w("")

	// Environment FIT.
	w("## Failure rates by environment")
	w("")
	flow, err := finser.RunFlowWithChar(finser.FlowConfig{
		Vdd: *vdd, Rows: *rows, Cols: *cols, ItersPerBin: *iters, Seed: *seed,
	}, char)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := finser.NewEngine(finser.EngineConfig{
		Tech: tech, Rows: *rows, Cols: *cols, Char: char,
		Transport: finser.DefaultTransport(),
	})
	if err != nil {
		log.Fatal(err)
	}
	nSpec, err := finser.NewNeutronSpectrum(1)
	if err != nil {
		log.Fatal(err)
	}
	nBins, err := finser.Bins(nSpec, 2, 1000, 10)
	if err != nil {
		log.Fatal(err)
	}
	nRes, err := eng.NeutronFIT(nSpec, finser.NewNeutronReactions(), nBins, *iters, *seed+7)
	if err != nil {
		log.Fatal(err)
	}
	cells := float64((*rows) * (*cols))
	w("| environment | total FIT | FIT/Mbit | SEU FIT | MBU FIT | MBU/SEU |")
	w("|---|---|---|---|---|---|")
	row := func(name string, r finser.FITResult) {
		w("| %s | %.4g | %.4g | %.4g | %.4g | %.2f%% |",
			name, r.TotalFIT, r.TotalFIT/cells*1e6, r.SEUFIT, r.MBUFIT, r.MBUToSEU)
	}
	row("package alpha (0.001 α/cm²·h)", flow.Alpha)
	row("sea-level proton", flow.Proton)
	row("sea-level neutron (indirect)", nRes)
	total := flow.Alpha.TotalFIT + flow.Proton.TotalFIT + nRes.TotalFIT
	w("| **combined** | **%.4g** | **%.4g** | | | |", total, total/cells*1e6)
	w("")

	// MBU geometry + ECC.
	w("## MBU geometry and ECC")
	w("")
	rep := eng.MBUStatsAtEnergy(finser.Alpha, 1, (*iters)*4, 6, *seed+9)
	w("Upset multiplicity per alpha strike (1 MeV):")
	w("")
	w("| bits flipped | probability |")
	w("|---|---|")
	for k, p := range rep.MultiplicityPMF {
		if k == 0 || p == 0 {
			continue
		}
		w("| %d | %.3g |", k, p)
	}
	w("")
	w("SEC-DED survival vs column interleaving:")
	w("")
	analyses, err := finser.ECCInterleaveSweep(rep, []int{1, 2, 4, 8}, true)
	if err != nil {
		log.Fatal(err)
	}
	w("| interleave | uncorrectable MBU share | residual alpha MBU FIT |")
	w("|---|---|---|")
	for i, a := range analyses {
		w("| %d-way | %.2f%% | %.4g |", []int{1, 2, 4, 8}[i],
			100*a.UncorrectableShare, finser.ResidualMBUFIT(flow.Alpha.MBUFIT, a))
	}
	w("")

	// Scrubbing policy.
	w("## Scrubbing policy")
	w("")
	four := analyses[2] // 4-way interleave
	sc := finser.ScrubConfig{
		Words:              (*rows) * (*cols) / 8, // 8-bit words for this toy array
		SEUFIT:             flow.Alpha.SEUFIT + flow.Proton.SEUFIT + nRes.SEUFIT,
		MBUFIT:             flow.Alpha.MBUFIT + flow.Proton.MBUFIT + nRes.MBUFIT,
		UncorrectableShare: four.UncorrectableShare,
	}
	if sc.Words < 1 {
		sc.Words = 1
	}
	w("Assuming SEC-DED over 8-bit words with 4-way interleaving:")
	w("")
	w("| scrub interval | uncorrectable FIT | MTTF |")
	w("|---|---|---|")
	pts, err := sc.Sweep([]float64{1, 24, 24 * 30, 24 * 365})
	if err != nil {
		log.Fatal(err)
	}
	labels := []string{"1 hour", "1 day", "1 month", "1 year"}
	for i, p := range pts {
		w("| %s | %.4g | %.3g years |", labels[i], p.UncorrectableFIT,
			finser.MTTFHours(p.UncorrectableFIT)/(24*365))
	}
	w("")
	w("break-even scrub interval (accumulation = MBU floor): %.3g hours",
		sc.BreakEvenIntervalHours())
	w("")
	w("---")
	w("generated by finser in %s", time.Since(start).Round(time.Second))

	if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes) in %s\n", *out, sb.Len(), time.Since(start).Round(time.Second))
}
