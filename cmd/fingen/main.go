// Command fingen runs the device-level stage of the flow on its own: the
// Monte-Carlo of particle passage through a single fin (the paper's Geant4
// step, Fig. 6 "performed once to obtain LUTs"), producing the
// electron-yield look-up tables as JSON artifacts that can be inspected,
// plotted, or version-controlled.
//
// Usage:
//
//	fingen -iters 100000 -out lut_alpha.json -species alpha
//	fingen -species proton -emin 0.1 -emax 100 -points 25
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"finser/internal/finfet"
	"finser/internal/geom"
	"finser/internal/lut"
	"finser/internal/phys"
	"finser/internal/rng"
	"finser/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fingen: ")

	var (
		species = flag.String("species", "alpha", "particle species: alpha|proton")
		iters   = flag.Int("iters", 50000, "Monte-Carlo secants per energy point")
		emin    = flag.Float64("emin", 0.1, "lowest energy (MeV)")
		emax    = flag.Float64("emax", 100, "highest energy (MeV)")
		points  = flag.Int("points", 17, "energy grid points (log-spaced)")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("out", "", "write the LUT JSON to this file")
	)
	flag.Parse()

	var sp phys.Species
	switch *species {
	case "alpha":
		sp = phys.Alpha
	case "proton":
		sp = phys.Proton
	default:
		log.Fatalf("unknown species %q", *species)
	}

	tech := finfet.Default14nmSOI()
	fin := geom.BoxAt(geom.V(0, 0, 0),
		geom.V(tech.FinWidthNm, tech.GateLengthNm, tech.FinHeightNm))
	cfg := transport.DefaultConfig()
	energies := lut.LogSpace(*emin, *emax, *points)

	fmt.Printf("single-fin e-h yield LUT: %s, fin %gx%gx%g nm, %d secants/point\n\n",
		sp, tech.FinWidthNm, tech.GateLengthNm, tech.FinHeightNm, *iters)
	fmt.Printf("%12s %14s %12s %12s\n", "E (MeV)", "mean pairs", "std", "max")

	src := rng.New(*seed)
	for _, e := range energies {
		ys := transport.FinYield(cfg, sp, e, fin, *iters, src)
		fmt.Printf("%12.4g %14.2f %12.2f %12.0f\n", e, ys.MeanPairs, ys.StdPairs, ys.MaxPairs)
	}

	if *out != "" {
		table, err := transport.BuildFinYieldLUT(cfg, sp, energies, fin, *iters, rng.New(*seed))
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := table.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
}
