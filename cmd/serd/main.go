// Command serd is the SER-as-a-service daemon: a long-running HTTP/JSON
// server that accepts FlowConfig-shaped soft-error jobs, runs them on a
// bounded worker pool behind an admission queue, and survives the failures
// a batch CLI cannot — transient stage errors are retried with jittered
// backoff, persistently failing species stages are circuit-broken, and a
// saturated queue sheds load with 503 + Retry-After instead of melting.
//
// Usage:
//
//	serd -addr :8080 -workers 2 -queue 16 -checkpoint-dir /var/lib/serd
//
// API:
//
//	POST /jobs              submit a job (JSON body, e.g. {"vdd": 0.8});
//	                        202 with the job record, 400 on invalid config,
//	                        503 + Retry-After when the queue is full
//	GET  /jobs              list all jobs in admission order
//	GET  /jobs/{id}         poll one job (state, retries, result)
//	GET  /jobs/{id}/events  live SSE telemetry: state transitions, throttled
//	                        progress, per-bin FIT results, guard violations;
//	                        reconnect with Last-Event-ID (or ?from=N) to
//	                        replay only missed events
//	POST /jobs/{id}/cancel  cancel a queued or running job
//	GET  /healthz           liveness + uptime + build identity
//	GET  /readyz            readiness (503 once draining)
//	GET  /metrics           JSON snapshot of serving + flow metrics
//	                        (latency histograms include p50/p95/p99);
//	                        ?format=prometheus renders the same registry in
//	                        Prometheus text exposition format
//	POST /shards            compute one energy-bin shard of a job's FIT
//	                        integration (the worker half of the distributed
//	                        protocol; coordinators call this, not humans)
//
// Distributed mode: -coordinator "http://w1:8080,http://w2:8080" turns this
// serd into a coordinator — submitted jobs are split into energy-bin shards
// and fanned out to the listed worker serds (plain serds; /shards is always
// served) with work stealing, per-worker circuit breakers, and retry on
// another worker when one crashes or times out. The merged FIT is
// bit-identical to a single-node run of the same config/seed (jobs must pin
// "workers"). Shard lifecycle events appear on the job's SSE stream, and
// /readyz reports 503 while every worker's breaker is open.
//
// Multi-tenant QoS: submissions carry an X-Tenant header (absent = the
// anonymous tenant) and an optional "class" field (interactive|batch,
// default batch). Admission runs per-tenant policing first — -tenant-rate
// (token bucket) and -tenant-quota (in-flight cap) reject an over-budget
// tenant with a typed 429 + Retry-After while other tenants keep being
// served; only global queue saturation sheds 503, with a Retry-After hint
// scaled to the live queue drain estimate (capped by -retry-after-max).
// Admitted jobs enter a weighted-fair queue over tenant × class flows
// (-tenants and -qos-weights set the weights), so a batch flood from one
// tenant cannot starve anyone else's interactive work. With -preempt, an
// interactive arrival that finds every worker busy on batch jobs asks the
// longest-running one to yield at its next checkpoint boundary: the victim
// requeues, later resumes from its per-bin checkpoint, and its final FIT is
// bit-identical to an uninterrupted run. Per-tenant counters, latency
// histograms, and circuit breakers appear in /metrics with tenant/class
// labels in the Prometheus exposition.
//
// Every job-scoped log line is structured (JSON by default, -log-format
// text for key=value) and stamped with the job ID and configuration
// fingerprint, the keys that join a log line to the job's metrics and its
// event stream.
//
// Durability: -data-dir /var/lib/serd makes the job layer crash-safe — a
// CRC-framed fsync'd write-ahead journal of job lifecycle records lives
// under it, and on startup serd replays the journal: terminal jobs come
// back queryable with their results, queued jobs re-enter the queue, and
// jobs that were mid-Monte-Carlo resume from their checkpoints (which
// default to <data-dir>/checkpoints) so the recovered FIT is bit-identical
// to an uninterrupted run. A `kill -9` loses nothing but in-flight
// milliseconds. Durable serds also dedupe retried submissions by the
// Idempotency-Key header (defaulting to the flow fingerprint): a client
// whose 202 was lost to the crash resubmits and lands on the original job
// with a 200. -job-ttl evicts terminal jobs (and their orphaned
// checkpoints) after the given age so the registry stays bounded.
//
// Shutdown: SIGTERM or SIGINT starts a graceful drain — admission stops
// (/readyz flips to 503), queued and running jobs are canceled, completed
// FIT bins are already checkpointed, and the process exits 0. With
// -checkpoint-dir set, resubmitting the identical job to a restarted serd
// resumes from the checkpoint and reproduces the uninterrupted result
// bit-identically.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"finser"
	"finser/internal/breaker"
	"finser/internal/dist"
	"finser/internal/obs"
	"finser/internal/qos"
	"finser/internal/retry"
	"finser/internal/server"
)

// parseWeights parses "name=weight,name=weight" fair-queue weight lists
// (the -tenants and -qos-weights flag syntax). Empty input is a nil map.
func parseWeights(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	m := map[string]float64{}
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("malformed entry %q (want name=weight)", pair)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("entry %q: weight must be a positive number", pair)
		}
		m[name] = w
	}
	return m, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("serd: ")

	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		queueDepth   = flag.Int("queue", server.DefaultQueueDepth, "admission queue depth; a full queue sheds with 503")
		workers      = flag.Int("workers", server.DefaultWorkers, "worker pool size (concurrent jobs)")
		jobTimeout   = flag.Duration("job-timeout", server.DefaultJobTimeout, "default per-job deadline (jobs may override via timeout_seconds)")
		retryAfter   = flag.Duration("retry-after", server.DefaultRetryAfter, "Retry-After hint returned with 503 rejections")
		maxAttempts  = flag.Int("retries", 4, "per-stage attempt budget (1 = no retries)")
		baseDelay    = flag.Duration("retry-base", 100*time.Millisecond, "base retry backoff (grows exponentially with full jitter)")
		brkThreshold = flag.Int("breaker-threshold", 5, "consecutive stage failures that trip a species breaker")
		brkCooldown  = flag.Duration("breaker-cooldown", 30*time.Second, "open-breaker cooldown before a half-open probe")
		ckDir        = flag.String("checkpoint-dir", "", "directory for per-job checkpoints; identical resubmissions resume bit-identically")
		dataDir      = flag.String("data-dir", "", "durable state root: job journal (journal.wal) plus default checkpoint dir; on restart the journal replays and interrupted jobs resume")
		jobTTL       = flag.Duration("job-ttl", 0, "evict terminal jobs (and orphaned checkpoints) this long after they finish; 0 keeps them forever")
		drainWait    = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for workers to unwind")
		guardStr     = flag.String("guard", "warn", "physics-invariant enforcement for every job: off|warn|strict (strict fails the job on the first violation)")
		logFormat    = flag.String("log-format", "json", "structured job-log format: json|text")
		logLevel     = flag.String("log-level", "info", "minimum structured-log level: debug|info|warn|error")
		heartbeat    = flag.Duration("heartbeat", server.DefaultHeartbeat, "SSE keep-alive comment interval on /jobs/{id}/events")
		eventBuffer  = flag.Int("event-buffer", 0, "per-job event ring capacity (the SSE replay window); 0 selects the default")

		tenants       = flag.String("tenants", "", `per-tenant fair-queue weights, e.g. "acme=4,lab=1"; unlisted tenants (and the anonymous tenant) weigh 1`)
		qosWeights    = flag.String("qos-weights", "", `priority-class fair-queue weights, e.g. "interactive=10,batch=1" (the default)`)
		preempt       = flag.Bool("preempt", false, "let interactive arrivals preempt the longest-running batch job at a checkpoint boundary (requires -checkpoint-dir or -data-dir)")
		tenantRate    = flag.Float64("tenant-rate", 0, "per-tenant sustained submission rate in jobs/second (429 over it); 0 disables")
		tenantBurst   = flag.Float64("tenant-burst", 0, "per-tenant token-bucket burst depth; 0 selects max(1, rate)")
		tenantQuota   = flag.Int("tenant-quota", 0, "per-tenant in-flight job cap, queued + running (429 over it); 0 disables")
		retryAfterMax = flag.Duration("retry-after-max", server.DefaultRetryAfterMax, "cap on the load-aware 503 Retry-After hint")

		coordinator   = flag.String("coordinator", "", "comma-separated worker serd URLs; non-empty switches this serd into coordinator mode (jobs shard across the workers)")
		shardBins     = flag.Int("shard-bins", 2, "coordinator: energy bins per shard")
		shardTimeout  = flag.Duration("shard-timeout", 10*time.Minute, "coordinator: per-shard-attempt deadline")
		shardAttempts = flag.Int("shard-attempts", 4, "coordinator: per-shard attempt budget across all workers before the job degrades to a partial FIT")
		stealAfter    = flag.Duration("steal-after", 30*time.Second, "coordinator: how long a shard may stay in flight before an idle worker duplicate-dispatches it")
		shardConc     = flag.Int("shard-concurrency", 0, "worker: concurrent shard slots on /shards (excess sheds 503); 0 selects the worker pool size")
	)
	flag.Parse()

	guardMode, err := finser.ParseGuardMode(*guardStr)
	if err != nil {
		log.Fatal(err)
	}

	tenantWeights, err := parseWeights(*tenants)
	if err != nil {
		log.Fatalf("-tenants: %v", err)
	}
	classWeights, err := parseWeights(*qosWeights)
	if err != nil {
		log.Fatalf("-qos-weights: %v", err)
	}
	for class := range classWeights {
		if class != qos.ClassInteractive && class != qos.ClassBatch {
			log.Fatalf("-qos-weights: unknown class %q (want interactive or batch)", class)
		}
	}
	if *preempt && *ckDir == "" && *dataDir == "" {
		log.Fatal("-preempt requires -checkpoint-dir or -data-dir: yielded work resumes from checkpoints")
	}

	level, ok := obs.ParseLogLevel(*logLevel)
	if !ok {
		log.Fatalf("unknown -log-level %q (want debug|info|warn|error)", *logLevel)
	}
	var logger *slog.Logger
	switch *logFormat {
	case "json":
		logger = obs.NewJSONLogger(os.Stderr, level)
	case "text":
		logger = obs.NewTextLogger(os.Stderr, level)
	default:
		log.Fatalf("unknown -log-format %q (want json|text)", *logFormat)
	}

	if *ckDir != "" {
		if err := os.MkdirAll(*ckDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	reg := finser.NewMetrics()
	var distributor server.Distributor
	if *coordinator != "" {
		co, err := dist.New(dist.Config{
			Workers:       strings.Split(*coordinator, ","),
			ShardBins:     *shardBins,
			ShardTimeout:  *shardTimeout,
			ShardAttempts: *shardAttempts,
			StealAfter:    *stealAfter,
			Metrics:       reg,
			Breaker: breaker.Config{
				FailureThreshold: *brkThreshold,
				Cooldown:         *brkCooldown,
				OnStateChange: func(name string, from, to breaker.State) {
					log.Printf("worker breaker %s: %s → %s", name, from, to)
				},
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		distributor = co
	}
	srv := server.New(server.Config{
		QueueDepth:       *queueDepth,
		Workers:          *workers,
		JobTimeout:       *jobTimeout,
		RetryAfter:       *retryAfter,
		CheckpointDir:    *ckDir,
		DataDir:          *dataDir,
		TenantWeights:    tenantWeights,
		ClassWeights:     classWeights,
		TenantRate:       *tenantRate,
		TenantBurst:      *tenantBurst,
		TenantQuota:      *tenantQuota,
		Preempt:          *preempt,
		RetryAfterMax:    *retryAfterMax,
		JobTTL:           *jobTTL,
		Metrics:          reg,
		Guard:            guardMode,
		GuardLog:         log.Printf,
		Heartbeat:        *heartbeat,
		EventBuffer:      *eventBuffer,
		Logger:           logger,
		Distributor:      distributor,
		ShardConcurrency: *shardConc,
		Retry: retry.Policy{
			MaxAttempts: *maxAttempts,
			BaseDelay:   *baseDelay,
			OnRetry: func(attempt int, err error, delay time.Duration) {
				log.Printf("stage attempt %d failed (%v); retrying in %s", attempt, err, delay.Round(time.Millisecond))
			},
		},
		Breaker: breaker.Config{
			FailureThreshold: *brkThreshold,
			Cooldown:         *brkCooldown,
			OnStateChange: func(name string, from, to breaker.State) {
				log.Printf("breaker %s: %s → %s", name, from, to)
			},
		},
	})
	if *dataDir != "" {
		stats, err := srv.Recover()
		if err != nil {
			log.Fatalf("journal recovery: %v", err)
		}
		log.Printf("journal replayed: %d jobs requeued, %d terminal restored, %d invalid, %d evicted, %d corrupt records skipped",
			stats.Requeued, stats.RestoredTerminal, stats.Invalid, stats.Evicted, stats.CorruptRecords)
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	if *coordinator != "" {
		log.Printf("coordinating on %s over workers %s (shard-bins=%d steal-after=%s attempts=%d)",
			*addr, *coordinator, *shardBins, *stealAfter, *shardAttempts)
	} else {
		log.Printf("serving on %s (workers=%d queue=%d checkpoint-dir=%q)",
			*addr, *workers, *queueDepth, *ckDir)
	}

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		// The listener died out from under us — nothing graceful left.
		log.Fatal(err)
	case sig := <-sigCh:
		log.Printf("%s: draining (admission stopped, canceling jobs, waiting up to %s)", sig, *drainWait)
	}

	// Drain first so status queries and /readyz keep answering while jobs
	// unwind; only then close the listener. A second signal aborts hard.
	go func() {
		s := <-sigCh
		log.Fatalf("%s during drain: aborting", s)
	}()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	code := 0
	if err := srv.Drain(drainCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
		code = 1
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	<-errCh // ListenAndServe returns ErrServerClosed after Shutdown

	if code == 0 {
		if *ckDir != "" {
			fmt.Println("drained cleanly; resubmit jobs after restart to resume from checkpoints")
		} else {
			fmt.Println("drained cleanly")
		}
	}
	os.Exit(code)
}
