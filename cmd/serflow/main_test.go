package main

import (
	"testing"

	"finser"
)

func TestParseVdds(t *testing.T) {
	got, err := parseVdds("0.7, 0.8,1.1")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.7, 0.8, 1.1}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, err := parseVdds("0.7,abc"); err == nil {
		t.Error("bad vdd accepted")
	}
	if _, err := parseVdds(""); err == nil {
		t.Error("empty vdd list accepted")
	}
}

func TestParsePattern(t *testing.T) {
	cases := map[string]finser.DataPattern{
		"zeros":        finser.PatternZeros,
		"ones":         finser.PatternOnes,
		"checkerboard": finser.PatternCheckerboard,
	}
	for s, want := range cases {
		got, err := parsePattern(s)
		if err != nil {
			t.Errorf("%s: %v", s, err)
		}
		if got != want {
			t.Errorf("%s → %v, want %v", s, got, want)
		}
	}
	if _, err := parsePattern("stripes"); err == nil {
		t.Error("unknown pattern accepted")
	}
}
