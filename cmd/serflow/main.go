// Command serflow runs the end-to-end cross-layer SER flow: cell
// characterization → array Monte-Carlo → FIT integration, for one or more
// supply voltages, printing a per-voltage report and optionally a machine-
// readable JSON dump.
//
// Usage:
//
//	serflow -vdd 0.7,0.8,0.9,1.0,1.1 -samples 200 -iters 50000 -pv
//	serflow -vdd 0.8 -rows 16 -cols 16 -json results.json
//	serflow -vdd 0.8 -progress -metrics m.json  # live ETA + metrics snapshot
//	serflow -vdd 0.8 -pprof localhost:6060      # pprof + /debug/vars expvar
//
// Long runs are interruptible and resumable: Ctrl-C (or SIGTERM) cancels
// the flow cooperatively, flushes whatever completed (partial JSON results,
// metrics snapshot) and exits nonzero. With -checkpoint, every completed
// FIT energy bin is persisted, and rerunning with -resume continues from
// the last completed bin, reproducing the uninterrupted result
// bit-identically:
//
//	serflow -vdd 0.8 -checkpoint run.ck.json -json out.json   # interrupted…
//	serflow -vdd 0.8 -checkpoint run.ck.json -resume -json out.json
//
// A wall-clock budget works the same way: -timeout 30m cancels the flow at
// the deadline, reports which stage it landed in, flushes partial output,
// and exits 124 (as timeout(1) would). Result and metrics files are always
// written atomically, so an interrupted flush never truncates a previous
// good file.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"finser"
)

// interruptExitCode is the conventional exit status for a SIGINT-style
// termination (128 + SIGINT); timeoutExitCode matches coreutils timeout(1).
const (
	interruptExitCode = 130
	timeoutExitCode   = 124
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serflow: ")

	var (
		vddList  = flag.String("vdd", "0.8", "comma-separated supply voltages (V)")
		rows     = flag.Int("rows", 9, "array rows")
		cols     = flag.Int("cols", 9, "array columns")
		pv       = flag.Bool("pv", true, "model threshold-voltage process variation")
		samples  = flag.Int("samples", 200, "process-variation Monte-Carlo samples")
		iters    = flag.Int("iters", 30000, "array-MC particles per energy bin")
		relErr   = flag.Float64("fit-rel-err", 0, "adaptive FIT: stop each energy bin once its POF confidence interval is inside this relative tolerance, in (0, 0.5] (0 = flat -iters budget); result-determining, so it is part of the checkpoint fingerprint")
		pattern  = flag.String("pattern", "zeros", "stored data pattern: zeros|ones|checkerboard")
		neut     = flag.Bool("neutron", false, "also estimate neutron-induced (indirect) SER")
		seed     = flag.Uint64("seed", 1, "random seed")
		jsonOut  = flag.String("json", "", "write results as JSON to this file")
		progress = flag.Bool("progress", false, "print live per-stage progress with ETA on stderr")
		metrics  = flag.String("metrics", "", "write a JSON metrics snapshot (counters, histograms, stage spans) to this file")
		pprof    = flag.String("pprof", "", "serve net/http/pprof and expvar metrics on this address (e.g. localhost:6060)")
		ckPath   = flag.String("checkpoint", "", "persist completed FIT energy bins to this JSON file so the run can be resumed")
		resume   = flag.Bool("resume", false, "resume from the -checkpoint file instead of starting fresh")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS); a resumed checkpoint requires the same effective value")
		timeout  = flag.Duration("timeout", 0, "overall wall-clock budget (e.g. 30m); on expiry partial results are flushed and the exit code is 124")
		guardStr = flag.String("guard", "warn", "physics-invariant enforcement: off|warn|strict (strict fails the run on the first violation)")
	)
	flag.Parse()

	cfg, vdds, err := buildConfig(*vddList, *rows, *cols, *pv, *samples, *iters, *relErr, *pattern, *seed)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Workers = *workers
	cfg.Guard, err = finser.ParseGuardMode(*guardStr)
	if err != nil {
		log.Fatal(err)
	}
	cfg.GuardLog = log.Printf
	if *resume && *ckPath == "" {
		log.Fatal("-resume requires -checkpoint")
	}

	var reg *finser.Metrics
	if *progress || *metrics != "" || *pprof != "" {
		reg = finser.NewMetrics()
		cfg.Obs = reg
	}
	if *metrics != "" {
		// Probe the snapshot path up front so a bad path fails before the
		// (potentially hours-long) run, not after it. The real snapshot is
		// written atomically at flush time.
		f, err := os.Create(*metrics)
		if err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
	if *progress {
		cfg.Progress = finser.ProgressPrinter(os.Stderr)
	}
	if *pprof != "" {
		reg.PublishExpvar("finser")
		go func() {
			// The default mux already carries pprof (imported above) and
			// expvar's /debug/vars.
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
		fmt.Printf("pprof + expvar on http://%s/debug/pprof and /debug/vars\n", *pprof)
	}

	if *ckPath != "" {
		var store *finser.CheckpointStore
		var err error
		if *resume {
			store, err = finser.ResumeCheckpoint(*ckPath, cfg, vdds)
		} else {
			store, err = finser.CreateCheckpoint(*ckPath, cfg, vdds)
		}
		if err != nil {
			var corrupt *finser.CheckpointCorruptError
			if errors.As(err, &corrupt) {
				log.Printf("%v", err)
				log.Fatalf("the checkpoint file is damaged and cannot be resumed; "+
					"delete %s and rerun without -resume to start fresh", corrupt.Path)
			}
			log.Fatal(err)
		}
		cfg.Checkpoint = store
		if *resume {
			fmt.Printf("resuming from checkpoint %s (%d stage(s) restored)\n",
				*ckPath, len(store.Stages()))
		}
	}

	// Ctrl-C / SIGTERM cancel the flow cooperatively: worker loops stop
	// within milliseconds, partial results and metrics are flushed below,
	// and a second signal kills the process the hard way (NotifyContext
	// restores default handling once the context is cancelled).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	// -timeout layers a wall-clock deadline under the signal context; the
	// engine reports which stage and bin the deadline landed in.
	if *timeout > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeout(ctx, *timeout)
		defer cancelTimeout()
	}

	fmt.Printf("cross-layer SER flow: %dx%d SRAM array, 14nm SOI FinFET, PV=%v (%d samples), %d particles/bin\n\n",
		*rows, *cols, *pv, *samples, *iters)
	fmt.Printf("%6s  %14s %12s %12s %9s  %14s %12s %12s %9s\n",
		"Vdd", "alphaFIT", "alphaSEU", "alphaMBU", "MBU/SEU%", "protonFIT", "protonSEU", "protonMBU", "MBU/SEU%")

	var results []*finser.FlowResult
	for _, vdd := range vdds {
		c := cfg
		c.Vdd = vdd
		start := time.Now()
		res, err := finser.RunFlowCtx(ctx, c)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				flush(results, reg, *jsonOut, *metrics)
				// The wrapped error names the stage (and bin) the budget
				// expired in, e.g. "core: fit/alpha bin 7: context deadline
				// exceeded".
				log.Printf("timed out after %s at vdd %g: %v", *timeout, vdd, err)
				if *ckPath != "" {
					log.Printf("rerun with -checkpoint %s -resume to continue", *ckPath)
				}
				os.Exit(timeoutExitCode)
			}
			if errors.Is(err, context.Canceled) {
				flush(results, reg, *jsonOut, *metrics)
				log.Printf("interrupted at vdd %g: %v", vdd, err)
				if *ckPath != "" {
					log.Printf("rerun with -checkpoint %s -resume to continue", *ckPath)
				}
				os.Exit(interruptExitCode)
			}
			// A stage failure still salvages the completed voltages before
			// exiting nonzero.
			flush(results, reg, *jsonOut, *metrics)
			log.Fatalf("vdd %g: %v", vdd, err)
		}
		results = append(results, res)
		fmt.Printf("%6.2f  %14.5g %12.5g %12.5g %9.3f  %14.5g %12.5g %12.5g %9.3f   (%s)\n",
			vdd,
			res.Alpha.TotalFIT, res.Alpha.SEUFIT, res.Alpha.MBUFIT, res.Alpha.MBUToSEU,
			res.Proton.TotalFIT, res.Proton.SEUFIT, res.Proton.MBUFIT, res.Proton.MBUToSEU,
			time.Since(start).Round(time.Millisecond))

		if *neut {
			nFIT, err := neutronFIT(c, res)
			if err != nil {
				log.Fatalf("vdd %g neutron: %v", vdd, err)
			}
			fmt.Printf("%6s  neutron: total=%.5g SEU=%.5g MBU=%.5g MBU/SEU=%.3f%%\n",
				"", nFIT.TotalFIT, nFIT.SEUFIT, nFIT.MBUFIT, nFIT.MBUToSEU)
		}
	}

	flush(results, reg, *jsonOut, *metrics)
}

// flush writes whatever results exist (possibly none) to the -json file
// and snapshots metrics — shared by the happy path and the interrupted /
// failed exits so partial work is never discarded silently. Both files are
// written atomically (temp file + rename), so a crash or signal landing
// mid-flush can never leave a truncated half-JSON file where a previous
// good result used to be.
func flush(results []*finser.FlowResult, reg *finser.Metrics, jsonOut, metricsPath string) {
	if jsonOut != "" {
		err := writeFileAtomic(jsonOut, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(results)
		})
		if err != nil {
			log.Print(err)
		} else {
			fmt.Printf("\nwrote %s (%d voltage(s))\n", jsonOut, len(results))
		}
	}
	if metricsPath != "" {
		if err := writeFileAtomic(metricsPath, reg.WriteJSON); err != nil {
			log.Print(err)
		} else {
			fmt.Printf("wrote metrics snapshot %s\n", metricsPath)
		}
	}
}

// writeFileAtomic writes via a temp file in the destination directory and
// renames it into place, so readers only ever observe a complete file.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once the rename has happened
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	// CreateTemp's 0600 would tighten what os.Create used to produce here;
	// restore the conventional mode (still subject to the umask at create
	// time for the probe file this replaces).
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// buildConfig validates the raw flag values up front — bad budgets or array
// dimensions fail here with a clear message instead of panicking (or
// silently misbehaving) layers deeper.
func buildConfig(vddList string, rows, cols int, pv bool, samples, iters int, relErr float64, pattern string, seed uint64) (finser.FlowConfig, []float64, error) {
	vdds, err := parseVdds(vddList)
	if err != nil {
		return finser.FlowConfig{}, nil, err
	}
	for _, v := range vdds {
		if v <= 0 {
			return finser.FlowConfig{}, nil, fmt.Errorf("-vdd must be positive, got %g", v)
		}
	}
	if rows <= 0 || cols <= 0 {
		return finser.FlowConfig{}, nil, fmt.Errorf("-rows/-cols must be positive, got %d×%d", rows, cols)
	}
	if samples <= 0 {
		return finser.FlowConfig{}, nil, fmt.Errorf("-samples must be positive, got %d", samples)
	}
	if iters <= 0 {
		return finser.FlowConfig{}, nil, fmt.Errorf("-iters must be positive, got %d", iters)
	}
	if relErr != 0 && !(relErr > 0 && relErr <= 0.5) {
		return finser.FlowConfig{}, nil, fmt.Errorf("-fit-rel-err must be in (0, 0.5], got %g", relErr)
	}
	pat, err := parsePattern(pattern)
	if err != nil {
		return finser.FlowConfig{}, nil, err
	}
	return finser.FlowConfig{
		Rows:             rows,
		Cols:             cols,
		ProcessVariation: pv,
		Samples:          samples,
		ItersPerBin:      iters,
		FITRelErr:        relErr,
		Pattern:          pat,
		Seed:             seed,
	}, vdds, nil
}

// neutronFIT runs the indirect-ionization extension with the flow's
// already-built characterization.
func neutronFIT(cfg finser.FlowConfig, res *finser.FlowResult) (finser.FITResult, error) {
	tr := finser.DefaultTransport()
	tr.Metrics = finser.NewTransportMetrics(cfg.Obs)
	eng, err := finser.NewEngine(finser.EngineConfig{
		Tech: finser.Default14nmSOI(), Rows: cfg.Rows, Cols: cfg.Cols,
		Char: res.Char, Transport: tr, Pattern: cfg.Pattern,
		Metrics: finser.NewEngineMetrics(cfg.Obs), Progress: cfg.Progress,
	})
	if err != nil {
		return finser.FITResult{}, err
	}
	spec, err := finser.NewNeutronSpectrum(1)
	if err != nil {
		return finser.FITResult{}, err
	}
	bins, err := finser.Bins(spec, 2, 1000, 10)
	if err != nil {
		return finser.FITResult{}, err
	}
	return eng.NeutronFIT(spec, finser.NewNeutronReactions(), bins, cfg.ItersPerBin, cfg.Seed+3)
}

func parseVdds(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad vdd %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parsePattern(s string) (finser.DataPattern, error) {
	switch s {
	case "zeros":
		return finser.PatternZeros, nil
	case "ones":
		return finser.PatternOnes, nil
	case "checkerboard":
		return finser.PatternCheckerboard, nil
	default:
		return 0, fmt.Errorf("unknown pattern %q", s)
	}
}
