// Command serflow runs the end-to-end cross-layer SER flow: cell
// characterization → array Monte-Carlo → FIT integration, for one or more
// supply voltages, printing a per-voltage report and optionally a machine-
// readable JSON dump.
//
// Usage:
//
//	serflow -vdd 0.7,0.8,0.9,1.0,1.1 -samples 200 -iters 50000 -pv
//	serflow -vdd 0.8 -rows 16 -cols 16 -json results.json
//	serflow -vdd 0.8 -progress -metrics m.json  # live ETA + metrics snapshot
//	serflow -vdd 0.8 -pprof localhost:6060      # pprof + /debug/vars expvar
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"finser"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serflow: ")

	var (
		vddList  = flag.String("vdd", "0.8", "comma-separated supply voltages (V)")
		rows     = flag.Int("rows", 9, "array rows")
		cols     = flag.Int("cols", 9, "array columns")
		pv       = flag.Bool("pv", true, "model threshold-voltage process variation")
		samples  = flag.Int("samples", 200, "process-variation Monte-Carlo samples")
		iters    = flag.Int("iters", 30000, "array-MC particles per energy bin")
		pattern  = flag.String("pattern", "zeros", "stored data pattern: zeros|ones|checkerboard")
		neut     = flag.Bool("neutron", false, "also estimate neutron-induced (indirect) SER")
		seed     = flag.Uint64("seed", 1, "random seed")
		jsonOut  = flag.String("json", "", "write results as JSON to this file")
		progress = flag.Bool("progress", false, "print live per-stage progress with ETA on stderr")
		metrics  = flag.String("metrics", "", "write a JSON metrics snapshot (counters, histograms, stage spans) to this file")
		pprof    = flag.String("pprof", "", "serve net/http/pprof and expvar metrics on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	cfg, vdds, err := buildConfig(*vddList, *rows, *cols, *pv, *samples, *iters, *pattern, *seed)
	if err != nil {
		log.Fatal(err)
	}

	var reg *finser.Metrics
	var metricsFile *os.File
	if *progress || *metrics != "" || *pprof != "" {
		reg = finser.NewMetrics()
		cfg.Obs = reg
	}
	if *metrics != "" {
		// Create the snapshot file up front so a bad path fails before the
		// (potentially hours-long) run, not after it.
		f, err := os.Create(*metrics)
		if err != nil {
			log.Fatal(err)
		}
		metricsFile = f
	}
	if *progress {
		cfg.Progress = finser.ProgressPrinter(os.Stderr)
	}
	if *pprof != "" {
		reg.PublishExpvar("finser")
		go func() {
			// The default mux already carries pprof (imported above) and
			// expvar's /debug/vars.
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
		fmt.Printf("pprof + expvar on http://%s/debug/pprof and /debug/vars\n", *pprof)
	}

	fmt.Printf("cross-layer SER flow: %dx%d SRAM array, 14nm SOI FinFET, PV=%v (%d samples), %d particles/bin\n\n",
		*rows, *cols, *pv, *samples, *iters)
	fmt.Printf("%6s  %14s %12s %12s %9s  %14s %12s %12s %9s\n",
		"Vdd", "alphaFIT", "alphaSEU", "alphaMBU", "MBU/SEU%", "protonFIT", "protonSEU", "protonMBU", "MBU/SEU%")

	var results []*finser.FlowResult
	for _, vdd := range vdds {
		c := cfg
		c.Vdd = vdd
		start := time.Now()
		res, err := finser.RunFlow(c)
		if err != nil {
			log.Fatalf("vdd %g: %v", vdd, err)
		}
		results = append(results, res)
		fmt.Printf("%6.2f  %14.5g %12.5g %12.5g %9.3f  %14.5g %12.5g %12.5g %9.3f   (%s)\n",
			vdd,
			res.Alpha.TotalFIT, res.Alpha.SEUFIT, res.Alpha.MBUFIT, res.Alpha.MBUToSEU,
			res.Proton.TotalFIT, res.Proton.SEUFIT, res.Proton.MBUFIT, res.Proton.MBUToSEU,
			time.Since(start).Round(time.Millisecond))

		if *neut {
			nFIT, err := neutronFIT(c, res)
			if err != nil {
				log.Fatalf("vdd %g neutron: %v", vdd, err)
			}
			fmt.Printf("%6s  neutron: total=%.5g SEU=%.5g MBU=%.5g MBU/SEU=%.3f%%\n",
				"", nFIT.TotalFIT, nFIT.SEUFIT, nFIT.MBUFIT, nFIT.MBUToSEU)
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *jsonOut)
	}
	if metricsFile != nil {
		if err := writeMetrics(reg, metricsFile); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote metrics snapshot %s\n", *metrics)
	}
}

// buildConfig validates the raw flag values up front — bad budgets or array
// dimensions fail here with a clear message instead of panicking (or
// silently misbehaving) layers deeper.
func buildConfig(vddList string, rows, cols int, pv bool, samples, iters int, pattern string, seed uint64) (finser.FlowConfig, []float64, error) {
	vdds, err := parseVdds(vddList)
	if err != nil {
		return finser.FlowConfig{}, nil, err
	}
	for _, v := range vdds {
		if v <= 0 {
			return finser.FlowConfig{}, nil, fmt.Errorf("-vdd must be positive, got %g", v)
		}
	}
	if rows <= 0 || cols <= 0 {
		return finser.FlowConfig{}, nil, fmt.Errorf("-rows/-cols must be positive, got %d×%d", rows, cols)
	}
	if samples <= 0 {
		return finser.FlowConfig{}, nil, fmt.Errorf("-samples must be positive, got %d", samples)
	}
	if iters <= 0 {
		return finser.FlowConfig{}, nil, fmt.Errorf("-iters must be positive, got %d", iters)
	}
	pat, err := parsePattern(pattern)
	if err != nil {
		return finser.FlowConfig{}, nil, err
	}
	return finser.FlowConfig{
		Rows:             rows,
		Cols:             cols,
		ProcessVariation: pv,
		Samples:          samples,
		ItersPerBin:      iters,
		Pattern:          pat,
		Seed:             seed,
	}, vdds, nil
}

func writeMetrics(reg *finser.Metrics, f *os.File) error {
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// neutronFIT runs the indirect-ionization extension with the flow's
// already-built characterization.
func neutronFIT(cfg finser.FlowConfig, res *finser.FlowResult) (finser.FITResult, error) {
	tr := finser.DefaultTransport()
	tr.Metrics = finser.NewTransportMetrics(cfg.Obs)
	eng, err := finser.NewEngine(finser.EngineConfig{
		Tech: finser.Default14nmSOI(), Rows: cfg.Rows, Cols: cfg.Cols,
		Char: res.Char, Transport: tr, Pattern: cfg.Pattern,
		Metrics: finser.NewEngineMetrics(cfg.Obs), Progress: cfg.Progress,
	})
	if err != nil {
		return finser.FITResult{}, err
	}
	spec, err := finser.NewNeutronSpectrum(1)
	if err != nil {
		return finser.FITResult{}, err
	}
	bins, err := finser.Bins(spec, 2, 1000, 10)
	if err != nil {
		return finser.FITResult{}, err
	}
	return eng.NeutronFIT(spec, finser.NewNeutronReactions(), bins, cfg.ItersPerBin, cfg.Seed+3)
}

func parseVdds(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad vdd %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parsePattern(s string) (finser.DataPattern, error) {
	switch s {
	case "zeros":
		return finser.PatternZeros, nil
	case "ones":
		return finser.PatternOnes, nil
	case "checkerboard":
		return finser.PatternCheckerboard, nil
	default:
		return 0, fmt.Errorf("unknown pattern %q", s)
	}
}
