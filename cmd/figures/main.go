// Command figures regenerates the data behind every figure in the paper's
// evaluation (DAC 2014, Figs. 2, 4, 8, 9, 10, 11), printing the series as
// tables and optionally writing CSV files. Values are normalized the way
// the paper presents them.
//
// Usage:
//
//	figures -fig all -samples 200 -iters 30000 -outdir ./out
//	figures -fig 9
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"finser"
)

type runner struct {
	samples int
	iters   int
	seed    uint64
	outdir  string
	// obs, when non-nil, collects counters and stage spans across every
	// figure regenerated in this invocation.
	obs *finser.Metrics
	// characterization cache, keyed by (vdd, pv)
	chars map[string]*finser.Characterization
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 2a|2b|4|8|9|10|11|all")
		samples = flag.Int("samples", 150, "process-variation samples per characterization")
		iters   = flag.Int("iters", 20000, "array-MC particles per energy point/bin")
		seed    = flag.Uint64("seed", 1, "random seed")
		outdir  = flag.String("outdir", "", "write CSV series to this directory")
		metrics = flag.String("metrics", "", "write a JSON metrics snapshot (counters, histograms, stage spans) to this file")
	)
	flag.Parse()

	r := &runner{
		samples: *samples,
		iters:   *iters,
		seed:    *seed,
		outdir:  *outdir,
		chars:   map[string]*finser.Characterization{},
	}
	if *metrics != "" {
		// Create the file up front so a bad path fails before the run.
		f, err := os.Create(*metrics)
		if err != nil {
			log.Fatal(err)
		}
		r.obs = finser.NewMetrics()
		defer func() {
			defer f.Close()
			if err := r.obs.WriteJSON(f); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nwrote metrics snapshot %s\n", *metrics)
		}()
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	figs := map[string]func() error{
		"2a": r.fig2a, "2b": r.fig2b, "4": r.fig4,
		"8": r.fig8, "9": r.fig9, "10": r.fig10, "11": r.fig11,
	}
	if *fig == "all" {
		for _, k := range []string{"2a", "2b", "4", "8", "9", "10", "11"} {
			if err := figs[k](); err != nil {
				log.Fatalf("fig %s: %v", k, err)
			}
		}
		return
	}
	fn, ok := figs[*fig]
	if !ok {
		log.Fatalf("unknown figure %q", *fig)
	}
	if err := fn(); err != nil {
		log.Fatalf("fig %s: %v", *fig, err)
	}
}

func (r *runner) char(vdd float64, pv bool) (*finser.Characterization, error) {
	key := fmt.Sprintf("%.3f-%v", vdd, pv)
	if ch, ok := r.chars[key]; ok {
		return ch, nil
	}
	ch, err := finser.Characterize(finser.CharConfig{
		Tech: finser.Default14nmSOI(), Vdd: vdd,
		Samples: r.samples, ProcessVariation: pv, Seed: r.seed,
		Metrics: finser.NewCharMetrics(r.obs),
	})
	if err != nil {
		return nil, err
	}
	r.chars[key] = ch
	return ch, nil
}

func (r *runner) engine(vdd float64, pv bool) (*finser.Engine, error) {
	ch, err := r.char(vdd, pv)
	if err != nil {
		return nil, err
	}
	tr := finser.DefaultTransport()
	tr.Metrics = finser.NewTransportMetrics(r.obs)
	return finser.NewEngine(finser.EngineConfig{
		Tech: finser.Default14nmSOI(), Rows: 9, Cols: 9,
		Char: ch, Transport: tr,
		Metrics: finser.NewEngineMetrics(r.obs),
	})
}

func (r *runner) writeCSV(name string, header []string, rows [][]float64) error {
	if r.outdir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(r.outdir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		rec := make([]string, len(row))
		for i, v := range row {
			rec[i] = strconv.FormatFloat(v, 'g', 8, 64)
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func (r *runner) fig2a() error {
	header("Fig. 2a — sea-level proton spectrum")
	s, err := finser.NewProtonSpectrum(1)
	if err != nil {
		return err
	}
	pts, err := finser.SpectrumCurve(s, 29)
	if err != nil {
		return err
	}
	fmt.Printf("%14s %18s\n", "E (MeV)", "flux (1/cm²/s/MeV)")
	rows := make([][]float64, 0, len(pts))
	for _, p := range pts {
		fmt.Printf("%14.4g %18.4g\n", p.EnergyMeV, p.Flux)
		rows = append(rows, []float64{p.EnergyMeV, p.Flux})
	}
	return r.writeCSV("fig2a_proton_spectrum.csv", []string{"energy_mev", "flux_per_cm2_s_mev"}, rows)
}

func (r *runner) fig2b() error {
	header("Fig. 2b — alpha emission spectrum (0.001 α/h·cm²)")
	s, err := finser.NewAlphaSpectrum(finser.DefaultAlphaRate)
	if err != nil {
		return err
	}
	pts, err := finser.SpectrumCurve(s, 25)
	if err != nil {
		return err
	}
	fmt.Printf("%14s %18s\n", "E (MeV)", "flux (1/cm²/s/MeV)")
	rows := make([][]float64, 0, len(pts))
	for _, p := range pts {
		fmt.Printf("%14.4g %18.4g\n", p.EnergyMeV, p.Flux)
		rows = append(rows, []float64{p.EnergyMeV, p.Flux})
	}
	return r.writeCSV("fig2b_alpha_spectrum.csv", []string{"energy_mev", "flux_per_cm2_s_mev"}, rows)
}

func (r *runner) fig4() error {
	header("Fig. 4 — normalized electrons generated in a single fin")
	tech := finser.Default14nmSOI()
	energies := finser.LogSpace(0.1, 100, 13)
	alpha, err := finser.FinYieldCurve(tech, finser.Alpha, energies, r.iters/2, r.seed)
	if err != nil {
		return err
	}
	proton, err := finser.FinYieldCurve(tech, finser.Proton, energies, r.iters/2, r.seed+1)
	if err != nil {
		return err
	}
	// Normalize jointly to the alpha maximum, as the paper's shared axis does.
	maxv := 0.0
	for _, p := range alpha {
		if p.MeanPairs > maxv {
			maxv = p.MeanPairs
		}
	}
	fmt.Printf("%12s %14s %14s\n", "E (MeV)", "alpha (norm)", "proton (norm)")
	rows := make([][]float64, 0, len(energies))
	for i := range energies {
		a, p := alpha[i].MeanPairs/maxv, proton[i].MeanPairs/maxv
		fmt.Printf("%12.4g %14.5g %14.5g\n", energies[i], a, p)
		rows = append(rows, []float64{energies[i], a, p})
	}
	return r.writeCSV("fig4_fin_yield.csv", []string{"energy_mev", "alpha_norm", "proton_norm"}, rows)
}

func (r *runner) fig8() error {
	header("Fig. 8 — normalized array POF vs energy (Vdd 0.7/0.8)")
	energies := finser.LogSpace(0.1, 100, 10)
	series := []struct {
		label string
		sp    finser.Species
		vdd   float64
	}{
		{"proton vdd=0.7", finser.Proton, 0.7},
		{"proton vdd=0.8", finser.Proton, 0.8},
		{"alpha vdd=0.7", finser.Alpha, 0.7},
		{"alpha vdd=0.8", finser.Alpha, 0.8},
	}
	table := make([][]float64, len(energies))
	for i := range table {
		table[i] = []float64{energies[i]}
	}
	var globalMax float64
	raw := make([][]float64, len(series))
	for si, s := range series {
		eng, err := r.engine(s.vdd, true)
		if err != nil {
			return err
		}
		pts, err := finser.POFCurve(eng, s.sp, energies, r.iters, r.seed+uint64(si))
		if err != nil {
			return err
		}
		raw[si] = make([]float64, len(pts))
		for i, p := range pts {
			raw[si][i] = p.Tot
			if p.Tot > globalMax {
				globalMax = p.Tot
			}
		}
	}
	fmt.Printf("%12s", "E (MeV)")
	for _, s := range series {
		fmt.Printf(" %16s", s.label)
	}
	fmt.Println()
	for i := range energies {
		fmt.Printf("%12.4g", energies[i])
		for si := range series {
			v := raw[si][i] / globalMax
			fmt.Printf(" %16.5g", v)
			table[i] = append(table[i], v)
		}
		fmt.Println()
	}
	return r.writeCSV("fig8_pof_vs_energy.csv",
		[]string{"energy_mev", "proton_0v7", "proton_0v8", "alpha_0v7", "alpha_0v8"}, table)
}

// vddSweep runs the full flow at the paper's five supply points, reusing
// cached characterizations, and returns per-vdd results.
func (r *runner) vddSweep(pv bool) ([]*finser.FlowResult, []float64, error) {
	vdds := []float64{0.7, 0.8, 0.9, 1.0, 1.1}
	out := make([]*finser.FlowResult, 0, len(vdds))
	for _, v := range vdds {
		ch, err := r.char(v, pv)
		if err != nil {
			return nil, nil, err
		}
		res, err := finser.RunFlowWithChar(finser.FlowConfig{
			Vdd: v, ItersPerBin: r.iters, Seed: r.seed,
			Samples: r.samples, ProcessVariation: pv,
			Obs: r.obs,
		}, ch)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, res)
	}
	return out, vdds, nil
}

func (r *runner) fig9() error {
	header("Fig. 9 — normalized FIT vs Vdd (proton and alpha)")
	results, vdds, err := r.vddSweep(true)
	if err != nil {
		return err
	}
	alphaF := make([]float64, len(results))
	protonF := make([]float64, len(results))
	for i, res := range results {
		alphaF[i] = res.Alpha.TotalFIT
		protonF[i] = res.Proton.TotalFIT
	}
	// The paper normalizes so the smallest rate on the plot is ~1.
	minv := alphaF[len(alphaF)-1]
	if protonF[len(protonF)-1] < minv {
		minv = protonF[len(protonF)-1]
	}
	fmt.Printf("%6s %16s %16s\n", "Vdd", "proton (norm)", "alpha (norm)")
	rows := make([][]float64, 0, len(vdds))
	for i := range vdds {
		p, a := protonF[i]/minv, alphaF[i]/minv
		fmt.Printf("%6.2f %16.5g %16.5g\n", vdds[i], p, a)
		rows = append(rows, []float64{vdds[i], p, a})
	}
	return r.writeCSV("fig9_fit_vs_vdd.csv", []string{"vdd", "proton_norm", "alpha_norm"}, rows)
}

func (r *runner) fig10() error {
	header("Fig. 10 — MBU/SEU ratio (%) vs Vdd")
	results, vdds, err := r.vddSweep(true)
	if err != nil {
		return err
	}
	fmt.Printf("%6s %14s %14s\n", "Vdd", "proton (%)", "alpha (%)")
	rows := make([][]float64, 0, len(vdds))
	for i, res := range results {
		fmt.Printf("%6.2f %14.4f %14.4f\n", vdds[i], res.Proton.MBUToSEU, res.Alpha.MBUToSEU)
		rows = append(rows, []float64{vdds[i], res.Proton.MBUToSEU, res.Alpha.MBUToSEU})
	}
	return r.writeCSV("fig10_mbu_seu.csv", []string{"vdd", "proton_pct", "alpha_pct"}, rows)
}

func (r *runner) fig11() error {
	header("Fig. 11 — process-variation effect on SER (alpha; proton same trend)")
	withPV, vdds, err := r.vddSweep(true)
	if err != nil {
		return err
	}
	noPV, _, err := r.vddSweep(false)
	if err != nil {
		return err
	}
	minv := noPV[len(noPV)-1].Alpha.TotalFIT
	fmt.Printf("%6s %14s %14s %10s %14s %14s %10s\n", "Vdd",
		"a with PV", "a w/o PV", "a under-%",
		"p with PV", "p w/o PV", "p under-%")
	rows := make([][]float64, 0, len(vdds))
	for i := range vdds {
		aPV, aNom := withPV[i].Alpha.TotalFIT, noPV[i].Alpha.TotalFIT
		pPV, pNom := withPV[i].Proton.TotalFIT, noPV[i].Proton.TotalFIT
		aUnder := 100 * (aPV - aNom) / aPV
		pUnder := 100 * (pPV - pNom) / pPV
		fmt.Printf("%6.2f %14.5g %14.5g %10.2f %14.5g %14.5g %10.2f\n",
			vdds[i], aPV/minv, aNom/minv, aUnder, pPV/minv, pNom/minv, pUnder)
		rows = append(rows, []float64{vdds[i], aPV / minv, aNom / minv, aUnder, pPV / minv, pNom / minv, pUnder})
	}
	return r.writeCSV("fig11_process_variation.csv",
		[]string{"vdd", "alpha_with_pv_norm", "alpha_without_pv_norm", "alpha_underestimate_pct",
			"proton_with_pv_norm", "proton_without_pv_norm", "proton_underestimate_pct"}, rows)
}
