// Command serload is an open-loop load generator for serd: it submits SER
// jobs at a fixed arrival rate regardless of how fast the server finishes
// them (the honest way to measure a queueing system — closed-loop clients
// hide queueing delay by waiting), consumes each accepted job's SSE event
// stream to observe its terminal state the moment it happens, and writes a
// JSON report of client-observed admission-to-done latency percentiles,
// shed rate, and event throughput, alongside the server's own
// admission-to-done histogram scraped from /metrics.
//
// Usage:
//
//	serload -addr http://localhost:8080 -rate 5 -duration 30s \
//	        -mix tiny=3,small=1 -out report.json
//
// The job mix is a weighted set of preset workload classes:
//
//	tiny   samples=8,  iters_per_bin=300,  alpha_bins=3, proton_bins=4
//	small  samples=30, iters_per_bin=2000, alpha_bins=6, proton_bins=8
//
// Every submission gets a distinct seed, so checkpoint fingerprints never
// collide and each job is real work.
//
// Multi-tenant runs: -tenants assigns traffic to named tenants with a
// per-tenant QoS-class mix, e.g.
//
//	serload -tenants "ui=interactive:1,bulk=batch:8" -rate 10 -duration 30s
//
// Each submission then carries its tenant in the X-Tenant header and its
// class (interactive|batch) in the body, and the report breaks latency
// percentiles out per tenant × class plus per-tenant shed (503) and
// over-budget (429) counts — the numbers that show whether serd's
// weighted-fair queue actually isolated the interactive tenant from the
// batch flood. Without -tenants every job is anonymous batch traffic and
// the report keeps its single-tenant shape.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"finser/internal/obs"
)

// jobClass is one preset workload in the mix.
type jobClass struct {
	name   string
	weight int
	body   map[string]any
}

var presets = map[string]map[string]any{
	"tiny": {
		"vdd": 0.7, "samples": 8, "iters_per_bin": 300,
		"alpha_bins": 3, "proton_bins": 4, "workers": 1,
	},
	"small": {
		"vdd": 0.7, "samples": 30, "iters_per_bin": 2000,
		"alpha_bins": 6, "proton_bins": 8, "workers": 1,
	},
}

// parseMix parses "tiny=3,small=1" into weighted classes.
func parseMix(s string) ([]jobClass, error) {
	var out []jobClass
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, found := strings.Cut(part, "=")
		w := 1
		if found {
			n, err := strconv.Atoi(wstr)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("bad weight in %q", part)
			}
			w = n
		}
		preset, ok := presets[name]
		if !ok {
			return nil, fmt.Errorf("unknown job class %q (want tiny|small)", name)
		}
		out = append(out, jobClass{name: name, weight: w, body: preset})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return out, nil
}

// pickClass draws one class by weight.
func pickClass(rng *rand.Rand, classes []jobClass) jobClass {
	total := 0
	for _, c := range classes {
		total += c.weight
	}
	n := rng.Intn(total)
	for _, c := range classes {
		if n < c.weight {
			return c
		}
		n -= c.weight
	}
	return classes[len(classes)-1]
}

// tenantArm is one tenant × QoS-class traffic source. tenant "" means
// anonymous (no X-Tenant header, no class field — the single-tenant shape).
type tenantArm struct {
	tenant   string
	qosClass string
	weight   int
}

// parseTenants parses the -tenants syntax: comma-separated
// tenant=class:weight[+class:weight] entries, e.g.
// "ui=interactive:1,bulk=batch:8". A bare class (no :weight) weighs 1.
func parseTenants(s string) ([]tenantArm, error) {
	if strings.TrimSpace(s) == "" {
		return []tenantArm{{weight: 1}}, nil
	}
	var arms []tenantArm
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, mix, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("malformed tenant entry %q (want tenant=class:weight+...)", entry)
		}
		for _, part := range strings.Split(mix, "+") {
			class, wstr, weighted := strings.Cut(part, ":")
			if class != "interactive" && class != "batch" {
				return nil, fmt.Errorf("tenant %s: unknown class %q (want interactive or batch)", name, class)
			}
			w := 1
			if weighted {
				n, err := strconv.Atoi(wstr)
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("tenant %s: bad weight in %q", name, part)
				}
				w = n
			}
			arms = append(arms, tenantArm{tenant: name, qosClass: class, weight: w})
		}
	}
	if len(arms) == 0 {
		return nil, fmt.Errorf("empty -tenants")
	}
	return arms, nil
}

// pickArm draws one tenant × class source by weight.
func pickArm(rng *rand.Rand, arms []tenantArm) tenantArm {
	total := 0
	for _, a := range arms {
		total += a.weight
	}
	n := rng.Intn(total)
	for _, a := range arms {
		if n < a.weight {
			return a
		}
		n -= a.weight
	}
	return arms[len(arms)-1]
}

// outcome is one accepted job's observed end.
type outcome struct {
	class    string // workload preset (tiny/small)
	tenant   string // "" for anonymous traffic
	qosClass string // "" (anonymous) | interactive | batch
	state    string
	errMsg   string  // terminal error text for failed/canceled jobs
	latency  float64 // admission (POST sent) to terminal event, seconds
	events   int64
}

// failureReason buckets a failed job's terminal error into the categories
// an operator acts on differently: a "partial" distributed FIT (some
// shards never completed — look at the worker pool), a blown "deadline"
// (raise timeout_seconds or shrink the job), a "guard" invariant trip
// (physics bug), or "other".
func failureReason(errMsg string) string {
	switch {
	case strings.Contains(errMsg, "shard(s) missing"):
		return "partial"
	case strings.Contains(errMsg, "deadline"):
		return "deadline"
	case strings.Contains(errMsg, "invariant"):
		return "guard"
	default:
		return "other"
	}
}

// latencySummary is the report's percentile block (nearest-rank on the
// client-observed samples).
type latencySummary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean_seconds"`
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
	Max   float64 `json:"max_seconds"`
}

func summarize(lats []float64) latencySummary {
	if len(lats) == 0 {
		return latencySummary{}
	}
	sort.Float64s(lats)
	sum := 0.0
	for _, v := range lats {
		sum += v
	}
	rank := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(lats)))) - 1
		if i < 0 {
			i = 0
		}
		return lats[i]
	}
	return latencySummary{
		Count: len(lats),
		Mean:  sum / float64(len(lats)),
		P50:   rank(0.50),
		P95:   rank(0.95),
		P99:   rank(0.99),
		Max:   lats[len(lats)-1],
	}
}

// report is the JSON artifact serload writes.
type report struct {
	GeneratedBy     string  `json:"generated_by"`
	Addr            string  `json:"addr"`
	RatePerSec      float64 `json:"rate_per_sec"`
	DurationSeconds float64 `json:"duration_seconds"`
	Mix             string  `json:"mix"`
	WallSeconds     float64 `json:"wall_seconds"`

	Submitted int64 `json:"submitted"`
	Accepted  int64 `json:"accepted"`
	// Shed counts submissions that stayed rejected after the resubmit
	// budget was spent — terminal sheds. Resubmitted counts the 503s that
	// were retried after honoring Retry-After; a job that sheds, retries,
	// and lands contributes to Resubmitted and Accepted, not Shed.
	Shed        int64   `json:"shed"`
	Resubmitted int64   `json:"resubmitted"`
	Errors      int64   `json:"errors"`
	ShedRate    float64 `json:"shed_rate"`

	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
	// FailedReasons breaks Failed down by terminal error category
	// (partial | deadline | guard | other) — shed is already its own
	// counter above, so non-OK outcomes are never lumped together.
	FailedReasons map[string]int `json:"failed_reasons,omitempty"`

	// Rejected429 counts submissions refused by per-tenant policing (rate
	// or quota) — distinct from Shed, which is global capacity. serload
	// treats a 429 as terminal for that arrival: the tenant is over its
	// budget and hammering the server would only confirm the limiter works.
	Rejected429 int64 `json:"rejected_429,omitempty"`

	EventsConsumed int64   `json:"events_consumed"`
	EventsPerSec   float64 `json:"events_per_sec"`

	Latency  latencySummary            `json:"latency"`
	PerClass map[string]latencySummary `json:"per_class"`

	// PerTenant breaks the run out per tenant (only with -tenants): latency
	// percentiles per QoS class plus the tenant's own shed/429 counts — the
	// isolation evidence a fairness experiment reads.
	Tenants   string                   `json:"tenants,omitempty"`
	PerTenant map[string]*tenantReport `json:"per_tenant,omitempty"`

	// ServerAdmissionToDone is serd's own admission-to-done histogram
	// (bucket counts plus p50/p95/p99) scraped from /metrics at the end of
	// the run — the server-side view to compare the client-observed
	// percentiles against.
	ServerAdmissionToDone *obs.HistogramSnapshot `json:"server_admission_to_done,omitempty"`
}

// tenantReport is one tenant's slice of the run.
type tenantReport struct {
	Accepted    int64 `json:"accepted"`
	Shed        int64 `json:"shed"`
	Rejected429 int64 `json:"rejected_429"`
	Done        int   `json:"done"`
	// PerClass is keyed by QoS class (interactive/batch) — the
	// per-tenant latency percentiles the fairness experiment compares.
	PerClass map[string]latencySummary `json:"per_class,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("serload: ")

	var (
		addr     = flag.String("addr", "http://localhost:8080", "serd base URL")
		rate     = flag.Float64("rate", 2, "open-loop arrival rate, jobs/second")
		duration = flag.Duration("duration", 15*time.Second, "how long to keep submitting")
		mixStr   = flag.String("mix", "tiny=3,small=1", "weighted job mix, e.g. tiny=3,small=1")
		tenantsStr = flag.String("tenants", "", `per-tenant QoS traffic mix, e.g. "ui=interactive:1,bulk=batch:8"; empty = anonymous single-tenant traffic`)
		outPath    = flag.String("out", "", "report file (default stdout)")
		seed     = flag.Int64("seed", 1, "mix-choice and job-seed RNG seed")
		jobWait  = flag.Duration("job-wait", 5*time.Minute, "how long to wait for in-flight jobs after the last submission")
		resubmit = flag.Int("resubmit-budget", 2, "how many times one shed (503) submission honors Retry-After and resubmits before counting as a terminal shed; 0 never resubmits")
	)
	flag.Parse()

	classes, err := parseMix(*mixStr)
	if err != nil {
		log.Fatal(err)
	}
	arms, err := parseTenants(*tenantsStr)
	if err != nil {
		log.Fatal(err)
	}
	if *rate <= 0 {
		log.Fatal("-rate must be positive")
	}

	rng := rand.New(rand.NewSource(*seed))
	var (
		submitted, accepted, shed, resubmitted, rejected429, errs, eventsTotal atomic.Int64

		mu          sync.Mutex
		outcomes    []outcome
		tenantSheds = map[string]*tenantReport{} // per-tenant shed/429, keyed by tenant
		wg          sync.WaitGroup
	)
	tenantRep := func(tenant string) *tenantReport {
		tr, ok := tenantSheds[tenant]
		if !ok {
			tr = &tenantReport{}
			tenantSheds[tenant] = tr
		}
		return tr
	}

	start := time.Now()
	interval := time.Duration(float64(time.Second) / *rate)
	ticker := time.NewTicker(interval)
	deadline := time.Now().Add(*duration)
	jobSeed := uint64(*seed)
	for time.Now().Before(deadline) {
		<-ticker.C
		cls := pickClass(rng, classes)
		arm := pickArm(rng, arms)
		jobSeed++
		submitted.Add(1)
		wg.Add(1)
		go func(cls jobClass, arm tenantArm, seed uint64) {
			defer wg.Done()
			o, status, retries := runOne(*addr, cls, arm, seed, *resubmit)
			resubmitted.Add(retries)
			switch status {
			case http.StatusAccepted, http.StatusOK:
				accepted.Add(1)
				eventsTotal.Add(o.events)
				mu.Lock()
				if arm.tenant != "" {
					tenantRep(arm.tenant).Accepted++
				}
				outcomes = append(outcomes, o)
				mu.Unlock()
			case http.StatusServiceUnavailable:
				shed.Add(1)
				if arm.tenant != "" {
					mu.Lock()
					tenantRep(arm.tenant).Shed++
					mu.Unlock()
				}
			case http.StatusTooManyRequests:
				rejected429.Add(1)
				if arm.tenant != "" {
					mu.Lock()
					tenantRep(arm.tenant).Rejected429++
					mu.Unlock()
				}
			default:
				errs.Add(1)
			}
		}(cls, arm, jobSeed)
	}
	ticker.Stop()

	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(*jobWait):
		log.Printf("gave up waiting for in-flight jobs after %s", *jobWait)
	}
	wall := time.Since(start).Seconds()

	rep := report{
		GeneratedBy:     "serload",
		Addr:            *addr,
		RatePerSec:      *rate,
		DurationSeconds: duration.Seconds(),
		Mix:             *mixStr,
		WallSeconds:     wall,
		Submitted:       submitted.Load(),
		Accepted:        accepted.Load(),
		Shed:            shed.Load(),
		Resubmitted:     resubmitted.Load(),
		Rejected429:     rejected429.Load(),
		Errors:          errs.Load(),
		EventsConsumed:  eventsTotal.Load(),
		PerClass:        map[string]latencySummary{},
		Tenants:         *tenantsStr,
	}
	if rep.Submitted > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Submitted)
	}
	if wall > 0 {
		rep.EventsPerSec = float64(rep.EventsConsumed) / wall
	}
	var all []float64
	perClass := map[string][]float64{}
	perTenantClass := map[string]map[string][]float64{} // tenant → QoS class → latencies
	for _, o := range outcomes {
		switch o.state {
		case "done":
			rep.Done++
			all = append(all, o.latency)
			perClass[o.class] = append(perClass[o.class], o.latency)
			if o.tenant != "" {
				tc, ok := perTenantClass[o.tenant]
				if !ok {
					tc = map[string][]float64{}
					perTenantClass[o.tenant] = tc
				}
				tc[o.qosClass] = append(tc[o.qosClass], o.latency)
				tenantRep(o.tenant).Done++
			}
		case "failed":
			rep.Failed++
			if rep.FailedReasons == nil {
				rep.FailedReasons = map[string]int{}
			}
			rep.FailedReasons[failureReason(o.errMsg)]++
		case "canceled":
			rep.Canceled++
		}
	}
	rep.Latency = summarize(all)
	for name, lats := range perClass {
		rep.PerClass[name] = summarize(lats)
	}
	if len(tenantSheds) > 0 {
		rep.PerTenant = tenantSheds
		for tenant, tc := range perTenantClass {
			tr := tenantRep(tenant)
			tr.PerClass = map[string]latencySummary{}
			for class, lats := range tc {
				tr.PerClass[class] = summarize(lats)
			}
		}
	}
	rep.ServerAdmissionToDone = scrapeServerHistogram(*addr)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *outPath == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("report written to %s (accepted=%d shed=%d p50=%.3gs p99=%.3gs)",
		*outPath, rep.Accepted, rep.Shed, rep.Latency.P50, rep.Latency.P99)
}

// runOne submits one job — honoring Retry-After on 503 up to budget
// resubmissions — and, when accepted, follows its SSE stream to the
// terminal state. It returns the final HTTP submit status (0 on a
// transport error) and how many resubmissions it spent. A 429 (the
// tenant's own rate/quota budget, not server capacity) is terminal
// immediately: resubmitting over-budget traffic would just measure the
// limiter again.
func runOne(addr string, cls jobClass, arm tenantArm, seed uint64, budget int) (outcome, int, int64) {
	body := make(map[string]any, len(cls.body)+2)
	for k, v := range cls.body {
		body[k] = v
	}
	body["seed"] = seed
	if arm.qosClass != "" {
		body["class"] = arm.qosClass
	}
	payload, _ := json.Marshal(body)
	fail := outcome{class: cls.name, tenant: arm.tenant, qosClass: arm.qosClass}

	t0 := time.Now()
	var resp *http.Response
	var retries int64
	for {
		req, err := http.NewRequest(http.MethodPost, addr+"/jobs", bytes.NewReader(payload))
		if err != nil {
			return fail, 0, retries
		}
		req.Header.Set("Content-Type", "application/json")
		if arm.tenant != "" {
			req.Header.Set("X-Tenant", arm.tenant)
		}
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			return fail, 0, retries
		}
		if resp.StatusCode != http.StatusServiceUnavailable || retries >= int64(budget) {
			break
		}
		// The load-shed contract: back off exactly as long as the server
		// asked, then resubmit. The budget bounds how long one arrival can
		// chase a saturated server.
		delay := retryAfterDelay(resp.Header.Get("Retry-After"))
		resp.Body.Close()
		retries++
		time.Sleep(delay)
	}
	defer resp.Body.Close()
	// 202 is a fresh admission; 200 is a durable serd deduping the
	// resubmission onto a job it already owns — both mean the job is in.
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return fail, resp.StatusCode, retries
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil || st.ID == "" {
		return fail, 0, retries
	}

	o := outcome{class: cls.name, tenant: arm.tenant, qosClass: arm.qosClass}
	state, errMsg, events := followEvents(addr, st.ID)
	o.events = events
	if state == "" {
		// Stream ended without a terminal event (e.g. server restarted);
		// fall back to one status poll.
		state, errMsg = pollState(addr, st.ID)
	}
	o.state = state
	o.errMsg = errMsg
	o.latency = time.Since(t0).Seconds()
	return o, resp.StatusCode, retries
}

// retryAfterDelay parses a Retry-After header (delta-seconds form),
// clamped to [100ms, 30s]; an absent or unparsable header backs off 1s.
func retryAfterDelay(h string) time.Duration {
	d := time.Second
	if secs, err := strconv.Atoi(strings.TrimSpace(h)); err == nil {
		d = time.Duration(secs) * time.Second
	}
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// followEvents consumes the job's SSE stream until a terminal state event
// or stream end, returning the terminal state ("" if none seen), its error
// text, and how many events arrived.
func followEvents(addr, id string) (string, string, int64) {
	resp, err := http.Get(addr + "/jobs/" + id + "/events")
	if err != nil {
		return "", "", 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", "", 0
	}
	var events int64
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		events++
		var e struct {
			Type  string `json:"type"`
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(line[len("data: "):]), &e); err != nil {
			continue
		}
		if e.Type == "state" {
			switch e.State {
			case "done", "failed", "canceled":
				return e.State, e.Error, events
			}
		}
	}
	return "", "", events
}

// pollState fetches the job's current state and error once.
func pollState(addr, id string) (string, string) {
	resp, err := http.Get(addr + "/jobs/" + id)
	if err != nil {
		return "", ""
	}
	defer resp.Body.Close()
	var st struct {
		State string `json:"state"`
		Error string `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&st) != nil {
		return "", ""
	}
	return st.State, st.Error
}

// scrapeServerHistogram pulls serd's admission-to-done histogram from the
// JSON /metrics snapshot (nil when unavailable).
func scrapeServerHistogram(addr string) *obs.HistogramSnapshot {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if json.NewDecoder(resp.Body).Decode(&snap) != nil {
		return nil
	}
	h, ok := snap.Histograms["serd/latency/admission_to_done_seconds"]
	if !ok {
		return nil
	}
	return &h
}
