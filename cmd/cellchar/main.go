// Command cellchar explores the circuit-level SRAM cell characterization:
// critical charges per sensitive transistor, the POF-vs-charge curve under
// process variation, the pulse-shape sensitivity study of the paper's §4,
// and optional export of the characterization as a reusable JSON LUT.
//
// Usage:
//
//	cellchar -vdd 0.8 -samples 500
//	cellchar -vdd 0.7 -shapes            # pulse-shape equivalence study
//	cellchar -vdd 0.8 -out pof_0v8.json  # save the POF LUT
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"finser"
	"finser/internal/finfet"
	"finser/internal/sram"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cellchar: ")

	var (
		vdd      = flag.Float64("vdd", 0.8, "supply voltage (V)")
		samples  = flag.Int("samples", 200, "process-variation samples")
		pv       = flag.Bool("pv", true, "model process variation")
		shapes   = flag.Bool("shapes", false, "run the pulse-shape sensitivity study")
		mode     = flag.Bool("read", false, "compare hold-mode vs read-mode critical charges")
		eightT   = flag.Bool("cell8t", false, "compare the 6T cell against the 8T read-decoupled cell")
		seed     = flag.Uint64("seed", 1, "random seed")
		relErr   = flag.Float64("fit-rel-err", 0, "after characterization, run a 9×9 adaptive array-FIT summary at this per-bin relative tolerance, in (0, 0.5] (0 = off)")
		out      = flag.String("out", "", "write the characterization JSON to this file")
		metrics  = flag.String("metrics", "", "write a JSON metrics snapshot (solver and characterization counters) to this file")
		guardStr = flag.String("guard", "warn", "physics-invariant enforcement: off|warn|strict (strict fails the run on the first violation)")
	)
	flag.Parse()
	guardMode, err := finser.ParseGuardMode(*guardStr)
	if err != nil {
		log.Fatal(err)
	}

	var reg *finser.Metrics
	if *metrics != "" {
		// Create the file up front so a bad path fails before the run.
		f, err := os.Create(*metrics)
		if err != nil {
			log.Fatal(err)
		}
		reg = finser.NewMetrics()
		defer func() {
			defer f.Close()
			if err := reg.WriteJSON(f); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nwrote metrics snapshot %s\n", *metrics)
		}()
	}

	tech := finfet.Default14nmSOI()
	tau := tech.TransitTime(*vdd)
	fmt.Printf("6T SRAM cell, %s, Vdd=%.2f V, pulse width τ=%.3g fs\n", tech.Name, *vdd, tau*1e15)
	if hold, err := sram.StaticNoiseMargin(tech, *vdd, sram.VthShifts{}, sram.HoldMode, 0); err == nil {
		if read, err := sram.StaticNoiseMargin(tech, *vdd, sram.VthShifts{}, sram.ReadMode, 0); err == nil {
			fmt.Printf("static noise margin: hold %.0f mV, read %.0f mV\n", hold.SNM*1e3, read.SNM*1e3)
		}
	}
	fmt.Println()

	if *shapes {
		runShapeStudy(tech, *vdd)
		return
	}
	if *mode {
		runReadModeStudy(tech, *vdd)
		return
	}
	if *eightT {
		run8TStudy(tech, *vdd)
		return
	}

	cfg := finser.CharConfig{
		Tech:             tech,
		Vdd:              *vdd,
		Samples:          *samples,
		ProcessVariation: *pv,
		Seed:             *seed,
		Metrics:          finser.NewCharMetrics(reg),
		Guard:            finser.NewGuard(guardMode, reg, log.Printf),
	}
	ch, err := finser.Characterize(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("critical charge per sensitive transistor (%d samples, PV=%v):\n", ch.Samples, *pv)
	fmt.Printf("%10s %12s %12s %12s %14s\n", "axis", "q05 (fC)", "median (fC)", "q95 (fC)", "median e-h pairs")
	for a := sram.AxisI1; a < sram.NumAxes; a++ {
		med := ch.QcritQuantile(a, 0.5)
		fmt.Printf("%10s %12.4f %12.4f %12.4f %14.0f\n",
			a,
			ch.QcritQuantile(a, 0.05)*1e15,
			med*1e15,
			ch.QcritQuantile(a, 0.95)*1e15,
			med/1.602176634e-19)
	}

	fmt.Printf("\nPOF vs charge (axis I1):\n%12s %8s\n", "charge (fC)", "POF")
	med := ch.QcritQuantile(sram.AxisI1, 0.5)
	for _, f := range []float64{0.5, 0.7, 0.85, 0.95, 1.0, 1.05, 1.15, 1.3, 1.6, 2.0} {
		q := med * f
		fmt.Printf("%12.4f %8.4f\n", q*1e15, ch.POFSingle(sram.AxisI1, q))
	}

	if *relErr != 0 {
		if !(*relErr > 0 && *relErr <= 0.5) {
			log.Fatalf("-fit-rel-err must be in (0, 0.5], got %g", *relErr)
		}
		runAdaptiveFITSummary(ch, *vdd, *samples, *pv, *seed, *relErr, reg)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := ch.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
}

// runAdaptiveFITSummary reuses the characterization just computed to run a
// small 9×9 array FIT under the adaptive sampler, reporting how the
// confidence-driven budget was spent per species.
func runAdaptiveFITSummary(ch *finser.Characterization, vdd float64, samples int, pv bool, seed uint64, relErr float64, reg *finser.Metrics) {
	cfg := finser.FlowConfig{
		Vdd:              vdd,
		Rows:             9,
		Cols:             9,
		ProcessVariation: pv,
		Samples:          samples,
		ItersPerBin:      4000,
		FITRelErr:        relErr,
		Seed:             seed,
		Obs:              reg,
	}
	res, err := finser.RunFlowWithChar(cfg, ch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadaptive 9×9 array FIT (rel-err target %g, flat budget %d/bin):\n", relErr, cfg.ItersPerBin)
	fmt.Printf("%8s %14s %10s %14s\n", "species", "FIT (a.u.)", "converged", "strikes saved")
	for _, s := range []struct {
		name string
		fit  finser.FITResult
	}{
		{"alpha", res.Alpha},
		{"proton", res.Proton},
	} {
		converged, saved := 0, 0
		for _, c := range s.fit.Conv {
			if c.Converged {
				converged++
			}
			saved += c.StrikesSaved
		}
		fmt.Printf("%8s %14.4g %7d/%-2d %14d\n", s.name, s.fit.TotalFIT, converged, len(s.fit.Conv), saved)
	}
}

// runShapeStudy reproduces the paper's §4 observation: POF depends on the
// deposited charge (area under the I-t curve), not on the pulse's width or
// shape.
func runShapeStudy(tech finfet.Technology, vdd float64) {
	cell, err := sram.NewCell(tech, vdd, sram.VthShifts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pulse-shape sensitivity study (paper §4): critical charge per shape")
	fmt.Printf("%14s %16s\n", "shape", "Qcrit (fC)")
	shapes := []struct {
		name  string
		shape sram.PulseShape
	}{
		{"rectangular", sram.ShapeRect},
		{"triangular", sram.ShapeTriangle},
		{"double-exp", sram.ShapeDoubleExp},
	}
	var base float64
	for i, s := range shapes {
		qc, err := cell.CriticalCharge(sram.AxisI2, 1e-18, 2e-14, s.shape)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = qc
		}
		fmt.Printf("%14s %16.5f   (ratio to rect: %.3f)\n", s.name, qc*1e15, qc/base)
	}
	fmt.Println("\nconclusion: equal-charge pulses of different shapes give matching")
	fmt.Println("critical charges — POF is set by deposited charge, as the paper reports.")
}

// runReadModeStudy compares hold-mode and read-mode (accessed cell)
// critical charges — the access-time vulnerability window.
func runReadModeStudy(tech finfet.Technology, vdd float64) {
	hold, err := sram.NewCellMode(tech, vdd, sram.VthShifts{}, sram.HoldMode)
	if err != nil {
		log.Fatal(err)
	}
	rd, err := sram.NewCellMode(tech, vdd, sram.VthShifts{}, sram.ReadMode)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read-access vulnerability study (read-disturb level %.3f V)\n\n",
		rd.ReadDisturbVoltage())
	fmt.Printf("%10s %16s %16s %10s\n", "axis", "hold Qcrit (fC)", "read Qcrit (fC)", "ratio")
	for _, axis := range []sram.Axis{sram.AxisI1, sram.AxisI2} {
		qh, err := hold.CriticalCharge(axis, 1e-18, 5e-14, sram.ShapeRect)
		if err != nil {
			log.Fatal(err)
		}
		qr, err := rd.CriticalCharge(axis, 1e-18, 5e-14, sram.ShapeRect)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10s %16.5f %16.5f %10.3f\n", axis, qh*1e15, qr*1e15, qr/qh)
	}
	fmt.Println("\naccessed cells flip at lower charge: the conducting pass gate lifts")
	fmt.Println("the '0' node toward the trip point before the particle even arrives.")
}

// run8TStudy compares the 6T cell against the 8T read-decoupled topology.
func run8TStudy(tech finfet.Technology, vdd float64) {
	fmt.Println("6T vs 8T read-decoupled cell")
	fmt.Printf("\n%24s %14s %14s\n", "condition", "6T Qcrit (fC)", "8T Qcrit (fC)")
	qc := func(cell *sram.Cell) float64 {
		v, err := cell.CriticalCharge(sram.AxisI1, 1e-18, 5e-14, sram.ShapeRect)
		if err != nil {
			log.Fatal(err)
		}
		return v * 1e15
	}
	hold6, err := sram.NewCellMode(tech, vdd, sram.VthShifts{}, sram.HoldMode)
	if err != nil {
		log.Fatal(err)
	}
	read6, err := sram.NewCellMode(tech, vdd, sram.VthShifts{}, sram.ReadMode)
	if err != nil {
		log.Fatal(err)
	}
	hold8, err := sram.NewCell8T(tech, vdd, sram.VthShifts{}, sram.HoldMode)
	if err != nil {
		log.Fatal(err)
	}
	read8, err := sram.NewCell8T(tech, vdd, sram.VthShifts{}, sram.ReadMode)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%24s %14.4f %14.4f\n", "hold", qc(hold6), qc(hold8.Cell))
	fmt.Printf("%24s %14.4f %14.4f\n", "accessed (read)", qc(read6), qc(read8.Cell))

	res, err := read8.SimulateReadPortStrike(5e-14)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nread-port strike of 50 fC flips the 8T cell: %v\n", res.Flipped)
	fmt.Println("the 8T pays two extra (benign) fins to keep its accessed-cell Qcrit")
	fmt.Println("at the hold level — the 6T loses stability every time it is read.")
}
