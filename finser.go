// Package finser is a cross-layer soft-error-rate (SER) analysis library
// for SRAM arrays in SOI FinFET technology, reproducing the device-to-
// circuit flow of Kiamehr, Osiecki, Tahoori and Nassif (DAC 2014):
//
//	particle strike → 3-D fin-level Monte-Carlo transport (e–h pairs)
//	              → transient drift-current pulse (τ = L²/µeVds)
//	              → SPICE-style 6T-cell POF characterization with
//	                threshold-voltage process variation
//	              → 3-D memory-array layout Monte Carlo
//	              → SEU/MBU split and FIT-rate integration over the
//	                sea-level proton and package-alpha spectra.
//
// The package is a façade over the substrate packages in internal/: it
// re-exports the types a downstream user needs (technology cards, cell
// characterization, the array engine, spectra) and provides the one-call
// orchestration (RunFlow, RunVddSweep) used by the examples, the command-
// line tools, and the paper-figure benchmarks.
//
// # Performance and determinism contract
//
// The steady-state Monte-Carlo hot path — one particle through broad phase,
// transport, per-cell charge accumulation, and POF reduction — allocates
// nothing: each worker owns a reusable scratch buffer, and the circuit
// solver reuses one workspace across Newton iterations and timesteps. The
// per-strike reduction iterates struck cells in sorted cell order, so every
// estimate (POF points, FIT rates, checkpoint-resumed sweeps) is
// bit-identical for a given (seed, workers) pair — not merely statistically
// reproducible. See README.md's "Performance" section for profiling and
// benchmark-reproduction instructions.
package finser

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"

	"finser/internal/checkpoint"
	"finser/internal/core"
	"finser/internal/ecc"
	"finser/internal/faultinject"
	"finser/internal/finfet"
	"finser/internal/guard"
	"finser/internal/lifetime"
	"finser/internal/neutron"
	"finser/internal/obs"
	"finser/internal/phys"
	"finser/internal/scrub"
	"finser/internal/spectra"
	"finser/internal/sram"
	"finser/internal/transport"
)

// Re-exported substrate types. Aliases keep the public surface in one
// import while the implementations stay in focused internal packages.
type (
	// Technology is the FinFET technology card (geometry + electrical).
	Technology = finfet.Technology
	// Species identifies a particle species.
	Species = phys.Species
	// Characterization is a cell POF model at one supply voltage.
	Characterization = sram.Characterization
	// CharConfig configures cell POF characterization.
	CharConfig = sram.CharConfig
	// GridLUT is the paper-format serialized POF look-up table.
	GridLUT = sram.GridLUT
	// POFProvider is any POF model the array engine can consume.
	POFProvider = sram.POFProvider
	// Engine is the array-level Monte-Carlo SER engine.
	Engine = core.Engine
	// EngineConfig assembles an Engine.
	EngineConfig = core.Config
	// FITResult is a spectrum-integrated failure-rate result.
	FITResult = core.FITResult
	// POFPoint is an array POF estimate at one energy.
	POFPoint = core.POFPoint
	// DataPattern selects the bits stored in the array.
	DataPattern = core.DataPattern
	// Incidence selects the angular distribution of incoming particles.
	Incidence = core.Incidence
	// Spectrum describes a particle flux environment.
	Spectrum = spectra.Spectrum
	// EnergyBin is one slice of a discretized spectrum.
	EnergyBin = spectra.EnergyBin
	// TransportConfig controls device-level physics fidelity.
	TransportConfig = transport.Config
	// PulseShape selects the injected current waveform.
	PulseShape = sram.PulseShape
	// NeutronReactions is the neutron–silicon reaction model (indirect
	// ionization extension; the paper's §7 future work).
	NeutronReactions = neutron.Reactions
	// NeutronPoint is the weighted array POF at one neutron energy.
	NeutronPoint = core.NeutronPoint
	// MBUReport summarizes upset multiplicity and geometry at one energy.
	MBUReport = core.MBUReport
	// AdaptiveSpec controls the run-until-precision Monte-Carlo stopping
	// rule.
	AdaptiveSpec = core.AdaptiveSpec
	// AdaptivePOF is a POF estimate with convergence metadata.
	AdaptivePOF = core.AdaptivePOF
	// BinConv is one FIT energy bin's convergence record under the adaptive
	// mode (FlowConfig.FITRelErr > 0): achieved relative error, weight-scaled
	// tolerance, consumed batches, and strikes saved versus the flat budget.
	BinConv = core.BinConv
	// PairKey is the row/column separation of an upset cell pair.
	PairKey = core.PairKey
	// ECCScheme describes word organization for interleaving analysis.
	ECCScheme = ecc.Scheme
	// ECCAnalysis is the outcome of applying a scheme to an MBU report.
	ECCAnalysis = ecc.Analysis
	// ScrubConfig models periodic scrubbing of an ECC-protected memory.
	ScrubConfig = scrub.Config
	// ScrubPoint is one entry of a scrub-interval sweep.
	ScrubPoint = scrub.Point
	// LifetimeConfig drives the event-level memory lifetime simulator.
	LifetimeConfig = lifetime.Config
	// LifetimeResult summarizes simulated memory lifetimes.
	LifetimeResult = lifetime.Result
	// Metrics is the cross-layer metrics registry (counters, gauges,
	// histograms, stage spans) snapshotable to JSON and publishable via
	// expvar. A nil *Metrics disables instrumentation at zero cost.
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time JSON-serializable metrics view.
	MetricsSnapshot = obs.Snapshot
	// Progress is one report from a long-running stage (done/total/ETA).
	Progress = obs.Progress
	// ProgressFunc consumes progress reports.
	ProgressFunc = obs.ProgressFunc
	// CheckpointStore is an on-disk checkpoint that persists each completed
	// FIT energy bin so an interrupted sweep resumes bit-identically
	// (serflow -checkpoint / -resume). Build one with CreateCheckpoint or
	// ResumeCheckpoint; a nil store disables checkpointing.
	CheckpointStore = checkpoint.Store
	// CheckpointCorruptError is the typed error a damaged (truncated,
	// malformed, or wrong-version) checkpoint file is rejected with. It
	// names the file and the cause; a merely missing file is a plain I/O
	// error instead, so callers can tell "never ran" from "damaged".
	// Match with errors.As.
	CheckpointCorruptError = checkpoint.CorruptError
	// FaultHooks injects deterministic failures (worker panics, solver
	// errors, cancellation) at named sites inside the long-running stages —
	// for robustness tests only. A nil *FaultHooks is the zero-cost
	// production configuration.
	FaultHooks = faultinject.Hooks
	// PanicError is the stack-carrying error a recovered worker panic
	// surfaces as; use errors.As to retrieve the stack.
	PanicError = faultinject.PanicError
	// Guard is the runtime physics-invariant checker threaded through the
	// flow (probabilities in range, finite solver outputs, charge
	// conservation, monotone POF tables, non-negative FIT). A nil *Guard is
	// the zero-cost off configuration.
	Guard = guard.Guard
	// GuardMode is the guard enforcement level (GuardOff/GuardWarn/
	// GuardStrict).
	GuardMode = guard.Mode
	// GuardLogf is the warn-mode log sink signature (log.Printf-compatible).
	GuardLogf = guard.Logf
	// InvariantError is the typed error a strict guard fails a stage with,
	// naming the invariant, the stage, and the offending value. Match with
	// errors.As.
	InvariantError = guard.InvariantError
	// BinEvent reports one completed FIT energy bin to FlowConfig.BinDone
	// (and EngineConfig.OnBinDone): the 1-based bin index, the bin's POF
	// point, and the Eq. 8 partial FIT sum so far.
	BinEvent = core.BinEvent
	// GuardViolation is the live violation payload FlowConfig.GuardEvent
	// receives for every recorded guard violation, in warn and strict modes
	// alike.
	GuardViolation = guard.Violation
	// BinDoneFunc consumes per-bin completion events.
	BinDoneFunc = func(BinEvent)
	// GuardEventFunc consumes live guard-violation events.
	GuardEventFunc = func(GuardViolation)
)

// Guard enforcement modes.
const (
	// GuardOff disables every invariant check (the zero value).
	GuardOff = guard.Off
	// GuardWarn counts and logs violations but lets the flow continue.
	GuardWarn = guard.Warn
	// GuardStrict fails the stage with a typed *InvariantError.
	GuardStrict = guard.Strict
)

// ParseGuardMode parses the -guard flag spelling ("off", "warn", "strict").
func ParseGuardMode(s string) (GuardMode, error) { return guard.ParseMode(s) }

// NewGuard builds a guard at the given mode, counting violations on reg
// (nil disables counting) and logging warn-mode hits through logf (nil
// discards). Returns nil — the zero-cost representation — for GuardOff.
// RunFlow and friends call this internally from FlowConfig.Guard; use it
// directly when assembling CharConfig or EngineConfig by hand.
func NewGuard(mode GuardMode, reg *Metrics, logf GuardLogf) *Guard {
	return guard.New(mode, reg, logf)
}

// NewFaultHooks returns an empty fault-injection hook set (tests only).
func NewFaultHooks() *FaultHooks { return faultinject.New() }

// Fault-injection sites reachable through FlowConfig.Faults.
const (
	// FaultSiteParticle is hit once per array-MC particle inside the FIT
	// worker loops.
	FaultSiteParticle = core.FaultSiteParticle
	// FaultSiteSample is hit once per process-variation sample inside the
	// characterization workers.
	FaultSiteSample = sram.FaultSiteSample
)

// ErrCheckpointMismatch is returned by ResumeCheckpoint when the file was
// written under a different configuration (use errors.Is).
var ErrCheckpointMismatch = checkpoint.ErrConfigMismatch

// NewMetrics returns an empty metrics registry for FlowConfig.Obs (and for
// the layer-level Metrics fields in CharConfig / EngineConfig /
// TransportConfig, via the internal constructors RunFlow wires up).
func NewMetrics() *Metrics { return obs.NewRegistry() }

// Layer-level metric bundles, for callers that assemble CharConfig or
// EngineConfig directly instead of going through RunFlow.
type (
	// EngineMetrics is the array engine's counter bundle (EngineConfig.Metrics).
	EngineMetrics = core.Metrics
	// CharMetrics is the characterization's counter bundle (CharConfig.Metrics).
	CharMetrics = sram.Metrics
	// TransportMetrics is the transport layer's counter bundle
	// (TransportConfig.Metrics).
	TransportMetrics = transport.Metrics
)

// NewEngineMetrics registers array-engine counters on r. Nil r → nil (no-op).
func NewEngineMetrics(r *Metrics) *EngineMetrics { return core.NewMetrics(r) }

// NewCharMetrics registers characterization and solver counters on r.
// Nil r → nil (no-op).
func NewCharMetrics(r *Metrics) *CharMetrics { return sram.NewMetrics(r) }

// NewTransportMetrics registers transport counters on r. Nil r → nil (no-op).
func NewTransportMetrics(r *Metrics) *TransportMetrics { return transport.NewMetrics(r) }

// ProgressPrinter returns a ProgressFunc rendering throttled one-line
// reports (stage, done/total, rate, ETA) on w — the live view behind
// serflow -progress.
func ProgressPrinter(w io.Writer) ProgressFunc {
	return obs.Printer(w)
}

// SimulateLifetime runs the event-driven scrubbed-memory simulator — the
// Monte-Carlo validation of the analytic ScrubConfig model.
func SimulateLifetime(cfg LifetimeConfig, trials int, seed uint64) (LifetimeResult, error) {
	return lifetime.Simulate(cfg, trials, seed)
}

// MTTFHours converts a FIT rate to mean time to failure in hours.
func MTTFHours(fit float64) float64 { return scrub.MTTFHours(fit) }

// Particle species.
const (
	Proton = phys.Proton
	Alpha  = phys.Alpha
)

// Data patterns.
const (
	PatternZeros        = core.PatternZeros
	PatternOnes         = core.PatternOnes
	PatternCheckerboard = core.PatternCheckerboard
)

// Pulse shapes.
const (
	ShapeRect      = sram.ShapeRect
	ShapeTriangle  = sram.ShapeTriangle
	ShapeDoubleExp = sram.ShapeDoubleExp
)

// Incidence modes.
const (
	IncidenceCosine    = core.IncidenceCosine
	IncidenceIsotropic = core.IncidenceIsotropic
)

// Deposit modes (full transport vs the paper's mean-yield LUT shortcut).
const (
	DepositTransport = core.DepositTransport
	DepositLUT       = core.DepositLUT
)

// Default14nmSOI returns the 14 nm SOI FinFET technology card.
func Default14nmSOI() Technology { return finfet.Default14nmSOI() }

// DefaultTransport returns the default device-level physics configuration.
func DefaultTransport() TransportConfig { return transport.DefaultConfig() }

// Characterize runs the circuit-level cell POF characterization.
func Characterize(cfg CharConfig) (*Characterization, error) {
	return sram.Characterize(cfg)
}

// CharacterizeCtx is Characterize with cooperative cancellation and worker
// panic isolation: a cancelled context stops the variation Monte Carlo
// within a sample and returns ctx.Err() wrapped with the stage identity.
func CharacterizeCtx(ctx context.Context, cfg CharConfig) (*Characterization, error) {
	return sram.CharacterizeCtx(ctx, cfg)
}

// NewEngine builds an array SER engine.
func NewEngine(cfg EngineConfig) (*Engine, error) { return core.New(cfg) }

// BuildGridLUT samples a characterization onto the paper-format POF grids
// (serializable; usable directly as the engine's POF provider).
func BuildGridLUT(ch *Characterization, nFine, nCoarse int, qLo, qHi float64) (*GridLUT, error) {
	return sram.BuildGridLUT(ch, nFine, nCoarse, qLo, qHi)
}

// NewAlphaSpectrum builds the package alpha-emission environment for the
// given emission rate in α/(cm²·h). The paper assumes 0.001.
func NewAlphaSpectrum(ratePerCm2Hour float64) (Spectrum, error) {
	return spectra.NewAlphaEmission(ratePerCm2Hour)
}

// NewProtonSpectrum builds the sea-level proton environment; scale
// multiplies the nominal flux.
func NewProtonSpectrum(scale float64) (Spectrum, error) {
	return spectra.NewProtonSeaLevel(scale)
}

// NewNeutronSpectrum builds the sea-level neutron environment; scale
// multiplies the nominal (JEDEC-class) flux.
func NewNeutronSpectrum(scale float64) (Spectrum, error) {
	return neutron.NewSeaLevel(scale)
}

// NewNeutronReactions builds the neutron–silicon reaction model used by
// Engine.NeutronFIT.
func NewNeutronReactions() *NeutronReactions { return neutron.NewReactions() }

// AnalyzeECC classifies an MBU report's pair statistics under a word
// organization, returning the SEC-DED-uncorrectable share.
func AnalyzeECC(rep MBUReport, s ECCScheme) (ECCAnalysis, error) {
	return ecc.Analyze(rep, s)
}

// ECCInterleaveSweep evaluates the uncorrectable share across column-
// interleaving factors.
func ECCInterleaveSweep(rep MBUReport, factors []int, sameRowOnly bool) ([]ECCAnalysis, error) {
	return ecc.InterleaveSweep(rep, factors, sameRowOnly)
}

// ResidualMBUFIT estimates the post-ECC failure rate contributed by MBUs.
func ResidualMBUFIT(mbuFIT float64, a ECCAnalysis) float64 {
	return ecc.ResidualMBUFIT(mbuFIT, a)
}

// Bins discretizes a spectrum into n log-spaced energy bins over [lo, hi]
// MeV with per-bin integral fluxes (the Eq. 8 discretization).
func Bins(s Spectrum, lo, hi float64, n int) ([]EnergyBin, error) {
	return spectra.Bins(s, lo, hi, n)
}

// DefaultAlphaRate is the paper's assumed alpha emission rate, α/(cm²·h).
const DefaultAlphaRate = spectra.DefaultAlphaRate

// AltitudeScale returns the atmospheric-flux multiplier at the given
// altitude in metres (1 at sea level), for use as a proton/neutron
// spectrum scale.
func AltitudeScale(altitudeMeters float64) float64 {
	return spectra.AltitudeScale(altitudeMeters)
}

// FlowConfig configures the end-to-end flow at a single supply voltage.
type FlowConfig struct {
	// Tech is the technology card; zero value selects Default14nmSOI.
	Tech Technology
	// Rows, Cols are the array dimensions; zero selects the paper's 9×9.
	Rows, Cols int
	// Vdd is the supply voltage (required).
	Vdd float64
	// ProcessVariation toggles the Vth Monte Carlo in characterization.
	ProcessVariation bool
	// Samples is the PV sample count (paper: 1000). Zero selects 1000.
	Samples int
	// ItersPerBin is the array-MC particle count per energy bin.
	// Zero selects 50000.
	ItersPerBin int
	// FITRelErr, when > 0, switches both species' FIT integrations to
	// confidence-driven adaptive sampling: each energy bin streams its
	// particles in batches of ItersPerBin/10 and stops as soon as its POF
	// confidence interval is inside this relative tolerance (scaled by the
	// bin's flux weight in the FIT integral), up to a hard per-bin cap of 4×
	// the flat budget. ItersPerBin becomes the flat reference budget. Valid
	// values are in (0, 0.5]; the tolerance is result-determining and part
	// of the flow fingerprint, so a fixed config stays bit-identical across
	// runs, worker counts, checkpoint resume, and distributed shard merges.
	// Zero (the default) keeps the exact flat-budget integration.
	FITRelErr float64
	// AlphaRate is the alpha emission rate in α/(cm²·h); zero selects the
	// paper's 0.001.
	AlphaRate float64
	// ProtonScale multiplies the sea-level proton flux; zero selects 1.
	ProtonScale float64
	// AlphaBins/ProtonBins are the energy discretizations; zero selects
	// 12 and 16.
	AlphaBins, ProtonBins int
	// Pattern is the stored data pattern.
	Pattern DataPattern
	// Seed makes the whole flow deterministic.
	Seed uint64
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// Obs, when non-nil, collects cross-layer metrics and stage spans for
	// the whole flow (circuit Newton work, transport rays, characterization
	// samples, array-MC hit statistics, per-stage wall times). Nil — the
	// default — keeps every layer on its zero-cost uninstrumented path.
	Obs *Metrics
	// Progress, when non-nil, receives throttled done/total/ETA reports
	// from the characterization and FIT stages.
	Progress ProgressFunc
	// Checkpoint, when non-nil, persists every completed FIT energy bin so
	// an interrupted run resumes bit-identically from the last completed
	// bin. Build it with CreateCheckpoint (fresh run) or ResumeCheckpoint
	// (continue an interrupted one); the store rejects resuming under a
	// different configuration.
	Checkpoint *CheckpointStore
	// Faults, when non-nil, injects deterministic failures into the worker
	// loops — robustness tests only. Nil (the default) is zero-cost.
	Faults *FaultHooks
	// Guard selects the physics-invariant enforcement mode for the whole
	// flow: GuardOff (default, zero cost), GuardWarn (count violations on
	// Obs and keep going), or GuardStrict (fail the stage with a typed
	// *InvariantError). Guard mode never changes the numbers a healthy run
	// produces, so it is excluded from checkpoint fingerprints.
	Guard GuardMode
	// GuardLog, when non-nil, receives warn-mode violation logs (throttled
	// to one line per invariant and stage). log.Printf fits.
	GuardLog GuardLogf
	// BinDone, when non-nil, receives one event per completed FIT energy bin
	// (per species, including bins restored from a checkpoint) with the
	// bin's POF point and the FIT accumulated so far — the hook a live
	// telemetry stream taps. It fires on the integration goroutine; keep it
	// non-blocking. Like Obs and Checkpoint, it never changes the numbers
	// and is excluded from checkpoint fingerprints.
	BinDone BinDoneFunc
	// GuardEvent, when non-nil, receives every guard violation (warn and
	// strict modes) as it is recorded, in addition to the Obs counters and
	// GuardLog lines. Same non-blocking and fingerprint-exclusion rules as
	// BinDone.
	GuardEvent GuardEventFunc
}

// newGuard builds the flow's guard from the config (nil when GuardOff),
// wiring the live violation hook when one is configured.
func (c FlowConfig) newGuard() *guard.Guard {
	g := guard.New(c.Guard, c.Obs, c.GuardLog)
	if c.GuardEvent != nil {
		g.SetNotify(c.GuardEvent)
	}
	return g
}

// ConfigError reports an invalid FlowConfig field — a caller mistake that
// no amount of retrying can fix. A serving layer maps it to HTTP 400
// (everything else stays a 500-class job failure), and retry policies
// treat it as fail-fast. Match with errors.As.
type ConfigError struct {
	// Field is the FlowConfig field name at fault.
	Field string
	// Reason describes the violation, including the offending value.
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("finser: FlowConfig.%s %s", e.Field, e.Reason)
}

// Validate resolves defaults and reports the first invalid field as a
// *ConfigError — the admission-time check a serving layer runs before
// queueing hours of work.
func (c FlowConfig) Validate() error {
	_, err := c.withDefaults()
	return err
}

func (c FlowConfig) withDefaults() (FlowConfig, error) {
	if c.Vdd <= 0 {
		return c, &ConfigError{Field: "Vdd", Reason: "must be positive"}
	}
	// Negative budgets and dimensions are always mistakes; fail here with
	// the field name instead of a confusing error (or hang) layers deeper.
	for _, f := range []struct {
		name string
		v    int
	}{
		{"Samples", c.Samples},
		{"ItersPerBin", c.ItersPerBin},
		{"Rows", c.Rows},
		{"Cols", c.Cols},
		{"AlphaBins", c.AlphaBins},
		{"ProtonBins", c.ProtonBins},
	} {
		if f.v < 0 {
			return c, &ConfigError{Field: f.name, Reason: fmt.Sprintf("must not be negative, got %d", f.v)}
		}
	}
	if !c.Pattern.Valid() {
		return c, &ConfigError{Field: "Pattern", Reason: fmt.Sprintf("unknown (%d)", c.Pattern)}
	}
	if c.FITRelErr != 0 && !(c.FITRelErr > 0 && c.FITRelErr <= 0.5) {
		// Above 0.5 the "converged" estimate would be noise; negative or NaN
		// tolerances are always mistakes.
		return c, &ConfigError{Field: "FITRelErr", Reason: fmt.Sprintf("must be in (0, 0.5], got %g", c.FITRelErr)}
	}
	if c.Tech.Name == "" {
		c.Tech = Default14nmSOI()
	}
	if c.Rows == 0 {
		c.Rows = 9
	}
	if c.Cols == 0 {
		c.Cols = 9
	}
	if c.Samples == 0 {
		c.Samples = 1000
	}
	if c.ItersPerBin == 0 {
		c.ItersPerBin = 50000
	}
	if c.AlphaRate == 0 {
		c.AlphaRate = DefaultAlphaRate
	}
	if c.ProtonScale == 0 {
		c.ProtonScale = 1
	}
	if c.AlphaBins == 0 {
		c.AlphaBins = 12
	}
	if c.ProtonBins == 0 {
		c.ProtonBins = 16
	}
	return c, nil
}

// FlowResult is the outcome of the end-to-end flow at one supply voltage.
type FlowResult struct {
	Vdd    float64
	Alpha  FITResult
	Proton FITResult
	// Char is the cell characterization used (reusable across runs).
	Char *Characterization
}

// RunFlow executes the complete paper flow at one Vdd: characterize the
// cell, build the array engine, and integrate FIT rates for both the alpha
// and proton environments.
func RunFlow(cfg FlowConfig) (*FlowResult, error) {
	return RunFlowCtx(context.Background(), cfg)
}

// RunFlowCtx is RunFlow with cooperative cancellation threaded through
// every long-running stage: a cancelled or expired context stops the
// characterization and FIT worker loops within milliseconds, and the
// returned error wraps ctx.Err() with the identity of the stage that was
// interrupted. With cfg.Checkpoint set, completed FIT bins survive the
// interruption and a rerun resumes from them.
func RunFlowCtx(ctx context.Context, cfg FlowConfig) (*FlowResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	flow := cfg.Obs.StartSpan("flow")
	defer flow.End()
	charSpan := flow.Child("characterize")
	char, err := CharacterizeCtx(ctx, CharConfig{
		Tech:             cfg.Tech,
		Vdd:              cfg.Vdd,
		Samples:          cfg.Samples,
		ProcessVariation: cfg.ProcessVariation,
		Seed:             cfg.Seed,
		Workers:          cfg.Workers,
		Metrics:          sram.NewMetrics(cfg.Obs),
		Progress:         cfg.Progress,
		Faults:           cfg.Faults,
		Guard:            cfg.newGuard(),
	})
	charSpan.End()
	if err != nil {
		return nil, fmt.Errorf("finser: characterize: %w", err)
	}
	return runFlowWithChar(ctx, cfg, char, flow)
}

// RunFlowWithChar is RunFlow with a pre-built characterization — useful for
// sweeps that vary only the environment.
func RunFlowWithChar(cfg FlowConfig, char *Characterization) (*FlowResult, error) {
	return RunFlowWithCharCtx(context.Background(), cfg, char)
}

// RunFlowWithCharCtx is RunFlowWithChar with cooperative cancellation.
func RunFlowWithCharCtx(ctx context.Context, cfg FlowConfig, char *Characterization) (*FlowResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	flow := cfg.Obs.StartSpan("flow")
	defer flow.End()
	return runFlowWithChar(ctx, cfg, char, flow)
}

// runFlowWithChar runs the environment half of the flow under the given
// (possibly nil) flow span; cfg must already carry defaults.
func runFlowWithChar(ctx context.Context, cfg FlowConfig, char *Characterization, flow *obs.Span) (*FlowResult, error) {
	eng, err := buildFlowEngine(cfg, char, flow)
	if err != nil {
		return nil, err
	}
	res := &FlowResult{Vdd: cfg.Vdd, Char: char}
	res.Alpha, err = fitSpecies(ctx, cfg, eng, flow, Alpha)
	if err != nil {
		return nil, err
	}
	res.Proton, err = fitSpecies(ctx, cfg, eng, flow, Proton)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// buildFlowEngine assembles the array engine exactly as RunFlow does; cfg
// must already carry defaults.
func buildFlowEngine(cfg FlowConfig, char *Characterization, flow *obs.Span) (*Engine, error) {
	transportCfg := DefaultTransport()
	transportCfg.Metrics = transport.NewMetrics(cfg.Obs)
	buildSpan := flow.Child("engine-build")
	engCfg := EngineConfig{
		Tech:      cfg.Tech,
		Rows:      cfg.Rows,
		Cols:      cfg.Cols,
		Char:      char,
		Transport: transportCfg,
		Pattern:   cfg.Pattern,
		Workers:   cfg.Workers,
		FITRelErr: cfg.FITRelErr,
		Metrics:   core.NewMetrics(cfg.Obs),
		Progress:  cfg.Progress,
		OnBinDone: cfg.BinDone,
		Faults:    cfg.Faults,
		Guard:     cfg.newGuard(),
	}
	if cfg.Checkpoint != nil {
		// Guarded assignment: a typed-nil *CheckpointStore must not become
		// a non-nil interface inside the engine.
		engCfg.Checkpoint = cfg.Checkpoint
		engCfg.CheckpointPrefix = fmt.Sprintf("vdd%g/", cfg.Vdd)
	}
	eng, err := NewEngine(engCfg)
	buildSpan.End()
	if err != nil {
		return nil, fmt.Errorf("finser: engine: %w", err)
	}
	return eng, nil
}

// speciesEnv resolves one species' environment exactly as the historical
// RunFlow did: the spectrum, its Eq. 8 energy-bin discretization, and the
// per-species seed offset (alpha: Seed+1, proton: Seed+2) matching the
// RunFlow stream split. cfg must already carry defaults. Every FIT surface
// — single-node, staged, and distributed shards — plans through this one
// function, so they all agree on the bins and seed schedule to the bit.
func speciesEnv(cfg FlowConfig, sp Species) (spec Spectrum, bins []EnergyBin, seed uint64, err error) {
	var (
		name   string
		lo, hi float64
		nBins  int
	)
	switch sp {
	case Alpha:
		spec, err = NewAlphaSpectrum(cfg.AlphaRate)
		name, lo, hi, nBins, seed = "alpha", 0.5, 10, cfg.AlphaBins, cfg.Seed+1
	case Proton:
		spec, err = NewProtonSpectrum(cfg.ProtonScale)
		name, lo, hi, nBins, seed = "proton", 0.1, 100, cfg.ProtonBins, cfg.Seed+2
	default:
		return nil, nil, 0, fmt.Errorf("finser: species FIT: unsupported species %v", sp)
	}
	if err != nil {
		return nil, nil, 0, err
	}
	bins, err = Bins(spec, lo, hi, nBins)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("finser: %s bins: %w", name, err)
	}
	return spec, bins, seed, nil
}

// fitSpecies runs one species' environment stage — spectrum, Eq. 8 bins,
// FIT integration — on an already-built engine. cfg must already carry
// defaults.
func fitSpecies(ctx context.Context, cfg FlowConfig, eng *Engine, flow *obs.Span, sp Species) (FITResult, error) {
	binSpan := flow.Child("bins-" + speciesName(sp))
	spec, bins, seed, err := speciesEnv(cfg, sp)
	binSpan.End()
	if err != nil {
		return FITResult{}, err
	}
	fitSpan := flow.Child("fit-" + speciesName(sp))
	res, err := eng.FITCtx(ctx, spec, bins, cfg.ItersPerBin, seed)
	fitSpan.End()
	if err != nil {
		return FITResult{}, fmt.Errorf("finser: %s FIT: %w", speciesName(sp), err)
	}
	return res, nil
}

// speciesName is the stable lowercase stage name of a species.
func speciesName(sp Species) string {
	if sp == Alpha {
		return "alpha"
	}
	return "proton"
}

// CharacterizeFlowCtx runs only the characterization stage of the flow,
// with the exact configuration mapping RunFlowCtx uses — the serving
// layer's first pipeline stage, so the expensive cell model can be retried
// (or reused) independently of the per-species FIT stages.
func CharacterizeFlowCtx(ctx context.Context, cfg FlowConfig) (*Characterization, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	flow := cfg.Obs.StartSpan("flow")
	defer flow.End()
	charSpan := flow.Child("characterize")
	char, err := CharacterizeCtx(ctx, CharConfig{
		Tech:             cfg.Tech,
		Vdd:              cfg.Vdd,
		Samples:          cfg.Samples,
		ProcessVariation: cfg.ProcessVariation,
		Seed:             cfg.Seed,
		Workers:          cfg.Workers,
		Metrics:          sram.NewMetrics(cfg.Obs),
		Progress:         cfg.Progress,
		Faults:           cfg.Faults,
		Guard:            cfg.newGuard(),
	})
	charSpan.End()
	if err != nil {
		return nil, fmt.Errorf("finser: characterize: %w", err)
	}
	return char, nil
}

// SpeciesFITCtx runs the single-species environment half of the flow —
// engine build, spectrum, bins, FIT integration — with a pre-built
// characterization. It is the unit a serving layer wraps in per-species
// retry and circuit-breaker policy: alpha and proton integrate with the
// same seed substreams RunFlowCtx would use (alpha: Seed+1, proton:
// Seed+2), so composing the two stages reproduces RunFlowCtx's FlowResult
// bit-identically, checkpoint-compatible with an uninterrupted run.
func SpeciesFITCtx(ctx context.Context, cfg FlowConfig, char *Characterization, sp Species) (FITResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return FITResult{}, err
	}
	flow := cfg.Obs.StartSpan("flow")
	defer flow.End()
	eng, err := buildFlowEngine(cfg, char, flow)
	if err != nil {
		return FITResult{}, err
	}
	return fitSpecies(ctx, cfg, eng, flow, sp)
}

// SpeciesBins returns the Eq. 8 energy-bin discretization one species' FIT
// stage integrates over, with cfg defaults resolved — the shard axis of a
// distributed run. The bins are a pure function of the configuration, so a
// coordinator and its workers independently derive identical plans.
func SpeciesBins(cfg FlowConfig, sp Species) ([]EnergyBin, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	_, bins, _, err := speciesEnv(cfg, sp)
	return bins, err
}

// SpeciesSeedSchedule returns the pre-drawn per-bin seed schedule of one
// species' FIT stage (aligned with SpeciesBins): bin k's Monte-Carlo
// substream is a pure function of (cfg.Seed, species, k), which is what
// lets an energy-bin shard run on any machine and still reproduce the
// single-node integration bit-identically.
func SpeciesSeedSchedule(cfg FlowConfig, sp Species) ([]uint64, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	_, bins, seed, err := speciesEnv(cfg, sp)
	if err != nil {
		return nil, err
	}
	return core.FITSeedSchedule(seed, len(bins)), nil
}

// SpeciesShardPOFCtx computes the POF points of one species' energy bins
// [from,to) with a pre-built characterization — the unit of work a
// distributed worker serd executes. The engine construction, bin plan, and
// per-bin seeds are exactly those of SpeciesFITCtx, so the returned points
// are bit-identical to the slice the single-node integration would
// produce for the same bins; a coordinator merges complete shard sets with
// AssembleSpeciesFIT.
func SpeciesShardPOFCtx(ctx context.Context, cfg FlowConfig, char *Characterization, sp Species, from, to int) ([]POFPoint, error) {
	pts, _, err := SpeciesShardPOFConvCtx(ctx, cfg, char, sp, from, to)
	return pts, err
}

// SpeciesShardPOFConvCtx is SpeciesShardPOFCtx returning the per-bin
// convergence records alongside the points when cfg.FITRelErr > 0 (nil
// under the flat budget) — the shard entry a distributed worker uses so the
// coordinator can carry each bin's convergence state through the merge.
func SpeciesShardPOFConvCtx(ctx context.Context, cfg FlowConfig, char *Characterization, sp Species, from, to int) ([]POFPoint, []BinConv, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	flow := cfg.Obs.StartSpan("flow")
	defer flow.End()
	// Shards never checkpoint worker-side: the coordinator owns shard-level
	// checkpoints, and a worker-local store would fracture the fingerprint
	// namespace.
	cfg.Checkpoint = nil
	eng, err := buildFlowEngine(cfg, char, flow)
	if err != nil {
		return nil, nil, err
	}
	_, bins, seed, err := speciesEnv(cfg, sp)
	if err != nil {
		return nil, nil, err
	}
	shardSpan := flow.Child(fmt.Sprintf("shard-%s-%d-%d", speciesName(sp), from, to))
	pts, conv, err := eng.POFBinsConvCtx(ctx, sp, bins, cfg.ItersPerBin, core.FITSeedSchedule(seed, len(bins)), from, to)
	shardSpan.End()
	if err != nil {
		return nil, nil, fmt.Errorf("finser: %s shard [%d,%d): %w", speciesName(sp), from, to, err)
	}
	return pts, conv, nil
}

// AssembleSpeciesFIT folds per-bin POF points into one species' FIT result
// without running any Monte Carlo — the distributed coordinator's merge
// step. binIdx names the energy bin of each point (nil means all bins, in
// order). With the complete bin set the accumulation runs the same float
// operations in the same order as the single-node FITCtx, so the merged
// FITResult is bit-identical to SpeciesFITCtx's; with a subset it is the
// partial FIT sum over just those bins (what a *dist.PartialError reports).
func AssembleSpeciesFIT(cfg FlowConfig, sp Species, binIdx []int, points []POFPoint) (FITResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return FITResult{}, err
	}
	_, bins, _, err := speciesEnv(cfg, sp)
	if err != nil {
		return FITResult{}, err
	}
	if binIdx == nil {
		binIdx = make([]int, len(bins))
		for i := range binIdx {
			binIdx[i] = i
		}
	}
	if len(binIdx) != len(points) {
		return FITResult{}, fmt.Errorf("finser: assemble %s FIT: %d bin indices for %d points", speciesName(sp), len(binIdx), len(points))
	}
	sel := make([]EnergyBin, len(binIdx))
	for k, i := range binIdx {
		if i < 0 || i >= len(bins) {
			return FITResult{}, fmt.Errorf("finser: assemble %s FIT: bin index %d outside %d-bin plan", speciesName(sp), i, len(bins))
		}
		if k > 0 && i <= binIdx[k-1] {
			return FITResult{}, fmt.Errorf("finser: assemble %s FIT: bin indices must be strictly increasing", speciesName(sp))
		}
		sel[k] = bins[i]
	}
	area, err := core.ArrayAreaCm2(cfg.Tech, cfg.Rows, cfg.Cols)
	if err != nil {
		return FITResult{}, fmt.Errorf("finser: assemble %s FIT: %w", speciesName(sp), err)
	}
	return core.AssembleFIT(sp, cfg.Vdd, sel, points, area), nil
}

// SweepError reports the voltage at which a Vdd sweep failed. RunVddSweep
// returns it alongside the results of every voltage completed before the
// failure, so hours of finished characterization and FIT work survive a
// late fault. Unwrap exposes the underlying stage error (including
// context.Canceled for interrupted sweeps).
type SweepError struct {
	// Vdd is the supply voltage whose flow failed.
	Vdd float64
	// Completed is the number of voltages that finished before the failure.
	Completed int
	// Err is the underlying failure.
	Err error
}

func (e *SweepError) Error() string {
	return fmt.Sprintf("finser: vdd %g (after %d completed): %v", e.Vdd, e.Completed, e.Err)
}

func (e *SweepError) Unwrap() error { return e.Err }

// RunVddSweep runs the flow across supply voltages (the Figs. 9–11 sweep).
// Each voltage gets its own cell characterization. On failure it returns
// the results of every completed voltage together with a *SweepError
// naming the voltage that failed — partial work is never discarded.
func RunVddSweep(cfg FlowConfig, vdds []float64) ([]*FlowResult, error) {
	return RunVddSweepCtx(context.Background(), cfg, vdds)
}

// RunVddSweepCtx is RunVddSweep with cooperative cancellation; an
// interrupted sweep returns the completed voltages plus a *SweepError
// wrapping ctx.Err().
func RunVddSweepCtx(ctx context.Context, cfg FlowConfig, vdds []float64) ([]*FlowResult, error) {
	if len(vdds) == 0 {
		return nil, errors.New("finser: empty vdd sweep")
	}
	out := make([]*FlowResult, 0, len(vdds))
	for _, v := range vdds {
		c := cfg
		c.Vdd = v
		r, err := RunFlowCtx(ctx, c)
		if err != nil {
			return out, &SweepError{Vdd: v, Completed: len(out), Err: err}
		}
		out = append(out, r)
	}
	if err := checkSweepMonotonicity(cfg, out); err != nil {
		return out, err
	}
	return out, nil
}

// checkSweepMonotonicity asserts the paper's Fig. 9 physics across a
// completed sweep: at a fixed reference charge, raising Vdd must not make
// the cell easier to flip. The probe charge is the lowest voltage's median
// critical charge (the steepest part of its POF curve); the tolerance
// absorbs Monte-Carlo noise between independently characterized voltages.
func checkSweepMonotonicity(cfg FlowConfig, out []*FlowResult) error {
	g := cfg.newGuard()
	if !g.Enabled() || len(out) < 2 {
		return nil
	}
	idx := make([]int, len(out))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return out[idx[a]].Vdd < out[idx[b]].Vdd })
	qRef := out[idx[0]].Char.QcritQuantile(sram.AxisI1, 0.5)
	if qRef <= 0 || math.IsInf(qRef, 1) || math.IsNaN(qRef) {
		return nil // the reference cell never flips; nothing to compare
	}
	pofs := make([]float64, len(idx))
	for k, i := range idx {
		pofs[k] = out[i].Char.POFSingle(sram.AxisI1, qRef)
	}
	return g.MonotoneNonIncreasing("finser.vddsweep", fmt.Sprintf("pof(vdd) @%.3g C", qRef), pofs, 0.05)
}

// flowFingerprint is the hashable identity of a sweep: every FlowConfig
// field that influences the numerical result, with defaults resolved, plus
// the voltage list. Observability and checkpoint wiring are deliberately
// excluded — they do not change the numbers.
type flowFingerprint struct {
	Tech             Technology
	Rows, Cols       int
	Vdds             []float64
	ProcessVariation bool
	Samples          int
	ItersPerBin      int
	// FITRelErr selects the adaptive FIT mode and its tolerance; it decides
	// which batches each bin consumes, so it is result-determining.
	FITRelErr float64
	AlphaRate float64
	ProtonScale      float64
	AlphaBins        int
	ProtonBins       int
	Pattern          DataPattern
	Seed             uint64
	// Workers changes the per-worker RNG substream split, so a checkpoint
	// is only bit-exact when resumed with the same effective parallelism.
	Workers int
}

// fingerprint hashes the result-determining subset of cfg and the voltage
// list. cfg.Vdd itself is ignored (the list is authoritative).
func flowConfigFingerprint(cfg FlowConfig, vdds []float64) (string, error) {
	c := cfg
	c.Vdd = 1 // withDefaults requires a positive Vdd; the value is not hashed
	c, err := c.withDefaults()
	if err != nil {
		return "", err
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return checkpoint.Fingerprint(flowFingerprint{
		Tech:             c.Tech,
		Rows:             c.Rows,
		Cols:             c.Cols,
		Vdds:             vdds,
		ProcessVariation: c.ProcessVariation,
		Samples:          c.Samples,
		ItersPerBin:      c.ItersPerBin,
		FITRelErr:        c.FITRelErr,
		AlphaRate:        c.AlphaRate,
		ProtonScale:      c.ProtonScale,
		AlphaBins:        c.AlphaBins,
		ProtonBins:       c.ProtonBins,
		Pattern:          c.Pattern,
		Seed:             c.Seed,
		Workers:          workers,
	})
}

// FlowFingerprint returns the hex digest identifying the result-
// determining configuration of a sweep — the same identity CreateCheckpoint
// stamps into checkpoint files. Serving layers use it to key per-job
// checkpoint files, so a resubmitted identical job finds (and resumes) its
// predecessor's partial work.
func FlowFingerprint(cfg FlowConfig, vdds []float64) (string, error) {
	return flowConfigFingerprint(cfg, vdds)
}

// CreateCheckpoint starts a fresh checkpoint file at path for the given
// sweep configuration, overwriting any existing file. Assign the returned
// store to FlowConfig.Checkpoint before running.
func CreateCheckpoint(path string, cfg FlowConfig, vdds []float64) (*CheckpointStore, error) {
	hash, err := flowConfigFingerprint(cfg, vdds)
	if err != nil {
		return nil, err
	}
	return checkpoint.Create(path, hash)
}

// ResumeCheckpoint opens the checkpoint file of an interrupted sweep. It
// rejects a file written under a different configuration (different
// physics, budgets, seed, voltage list, or effective worker count), since
// resuming such a run could silently mix incompatible Monte-Carlo data.
func ResumeCheckpoint(path string, cfg FlowConfig, vdds []float64) (*CheckpointStore, error) {
	hash, err := flowConfigFingerprint(cfg, vdds)
	if err != nil {
		return nil, err
	}
	return checkpoint.Resume(path, hash)
}
